package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqltypes"
)

// planTable is one resolved FROM item inside a selectPlan.
type planTable struct {
	schema *TableSchema
	data   *tableData
	alias  string
	start  int // offset of this table's columns in the joined row
}

// selectPlan is a bound, resolved SELECT ready for execution. Planning
// mutates the statement AST (the binder writes ColRef.Index), so a plan
// is built at most once per (statement, schema epoch) — see Stmt — and
// execution via runSelect treats both the plan and the AST as strictly
// read-only. That property is what lets concurrent readers share one
// cached plan under the engine's read lock.
type selectPlan struct {
	stmt       *SelectStmt
	tables     []planTable
	env        *bindEnv
	aggregated bool
	orderBound []bool
	proj       []Expr
	labels     []string
	kinds      []sqltypes.Kind
	noFrom     bool

	// path is the planner's access-path choice for the first FROM
	// table (nil = heap scan); see planner.go. It is immutable after
	// planning and shared by concurrent executions.
	path *accessPath

	// aggItems, when non-nil, plans the whole query as index-only
	// aggregation (see aggplan.go): the projection is COUNT/MIN/MAX
	// answered from path's exact key range without materialising rows.
	aggItems []aggItem

	// joins holds the index nested-loop probe per FROM item (nil =
	// exhaustive scan); revProbe is the two-table swap candidate that
	// probes the FIRST table instead. See joinplan.go. Both immutable
	// after planning.
	joins    []*joinProbe
	revProbe *joinProbe

	// hashJoins holds the hash-join fallback per FROM item (only where
	// equi-join conjuncts exist but no index serves them); revHash is
	// the two-table candidate that builds the hash table on the FIRST
	// table instead. See joinplan.go. Immutable after planning.
	hashJoins []*hashJoinPlan
	revHash   *hashJoinPlan

	// Fold-based aggregation state (see agg.go): every aggregate call
	// in the projection/HAVING/ORDER BY gets an accumulator slot, keyed
	// by AST node identity. groupCols names the GROUP BY columns when
	// they are plain single-table column references; streamGroups marks
	// that path emits rows clustered by them (planner.go), so the
	// executor folds one group at a time instead of hashing.
	aggCalls     []aggCall
	aggSlots     map[*FuncCall]int
	groupCols    []string
	streamGroups bool

	// groupIdxFold, when non-nil, answers the grouped aggregate from
	// index keys alone — zero heap fetches (see aggplan.go).
	groupIdxFold *groupIdxFoldPlan

	// groupStop, when positive, bounds a streaming (group-ordered)
	// grouped fold at OFFSET+LIMIT groups: with no HAVING to drop
	// groups, no ORDER BY to reorder them and no DISTINCT to reshape
	// the rows, groups past the limit cannot reach the result, so the
	// scan stops as soon as the last wanted group closes.
	groupStop int

	// topK marks ORDER BY ... LIMIT plans whose sort runs as a bounded
	// heap selection — O(n log k) over the OFFSET+LIMIT best rows —
	// instead of a full sort. Advisory (the executor re-checks row
	// counts at run time); AccessPath renders it as " top-k".
	topK bool

	// cacheable marks plans whose result is a pure function of (bound
	// args, visible data): no volatile function — NOW() /
	// CURRENT_TIMESTAMP — anywhere in the statement. Only cacheable
	// plans may be served from or stored into the result cache.
	cacheable bool
}

// planVolatile reports whether any expression in the statement calls a
// volatile function, whose value changes between executions even when
// no data changed.
func planVolatile(plan *selectPlan) bool {
	s := plan.stmt
	vol := false
	check := func(e Expr) {
		if e == nil || vol {
			return
		}
		walkExpr(e, func(x Expr) bool {
			if fc, ok := x.(*FuncCall); ok {
				switch strings.ToUpper(fc.Name) {
				case "NOW", "CURRENT_TIMESTAMP":
					vol = true
					return false
				}
			}
			return true
		})
	}
	for _, e := range plan.proj {
		check(e)
	}
	check(s.Where)
	for _, g := range s.GroupBy {
		check(g)
	}
	check(s.Having)
	for _, o := range s.OrderBy {
		check(o.Expr)
	}
	for _, fi := range s.From {
		check(fi.JoinCond)
	}
	return vol
}

// outRow is one projected output row awaiting DISTINCT/ORDER BY/LIMIT.
// Exactly one of group (legacy aggregated), gs (fold aggregated) or src
// (non-aggregated) carries the source context ORDER BY may still need.
type outRow struct {
	vals  []sqltypes.Value
	group [][]sqltypes.Value
	gs    *groupState
	src   []sqltypes.Value
}

// execSelectLocked plans and runs a SELECT in one step (the uncached
// path). The caller holds db.mu exclusively — this is the explicit-Tx /
// script path — so the query runs in latest-mode visibility: it must
// see the enclosing transaction's own uncommitted writes, and no other
// writer can be in flight under the exclusive lock.
func (db *DB) execSelectLocked(s *SelectStmt, params []sqltypes.Value, ic *interrupt) (*Rows, error) {
	plan, err := db.planSelect(s)
	if err != nil {
		return nil, err
	}
	return db.runSelectAt(plan, params, snapLatest, nil, ic)
}

// planSelect resolves FROM items against the catalogue, binds every
// expression and runs the access-path planner (planner.go) over the
// first FROM table. Execution remains deliberately simple — nested-loop
// joins in FROM order with pushed ON predicates, hash aggregation, then
// sort/limit — but the initial table access is index-driven whenever the
// WHERE conjuncts or ORDER BY allow: hash lookups for equalities,
// ordered-index scans for ranges and in-order reads. Caller holds db.mu
// (read suffices; binding of a shared statement is serialised by
// Stmt.mu).
func (db *DB) planSelect(s *SelectStmt) (*selectPlan, error) {
	// SELECT without FROM: bind items against an empty namespace.
	if len(s.From) == 0 {
		plan := &selectPlan{stmt: s, noFrom: true}
		for _, item := range s.Items {
			if item.Star {
				return nil, fmt.Errorf("sqldb: SELECT * requires a FROM clause")
			}
			if err := bindExpr(item.Expr, &bindEnv{}, false); err != nil {
				return nil, err
			}
			label := item.Alias
			if label == "" {
				label = exprLabel(item.Expr)
			}
			plan.proj = append(plan.proj, item.Expr)
			plan.labels = append(plan.labels, label)
		}
		plan.cacheable = !planVolatile(plan)
		return plan, nil
	}

	var (
		tables []planTable
		env    = &bindEnv{}
	)
	for _, fi := range s.From {
		schema, ok := db.cat.Table(fi.Table)
		if !ok {
			return nil, fmt.Errorf("sqldb: table %s does not exist", fi.Table)
		}
		alias := strings.ToUpper(fi.Alias)
		if alias == "" {
			alias = schema.Name
		}
		for _, t := range tables {
			if t.alias == alias {
				return nil, fmt.Errorf("sqldb: duplicate table alias %s", alias)
			}
		}
		ft := planTable{schema: schema, data: db.data[schema.Name], alias: alias, start: len(env.cols)}
		for _, c := range schema.Cols {
			env.cols = append(env.cols, qualCol{table: alias, col: c.Name})
		}
		tables = append(tables, ft)
	}

	// Bind all expressions.
	aggregated := len(s.GroupBy) > 0
	for _, item := range s.Items {
		if item.Star {
			continue
		}
		if err := bindExpr(item.Expr, env, true); err != nil {
			return nil, err
		}
		if exprHasAggregate(item.Expr) {
			aggregated = true
		}
	}
	if s.Where != nil {
		if err := bindExpr(s.Where, env, false); err != nil {
			return nil, err
		}
	}
	for _, g := range s.GroupBy {
		if err := bindExpr(g, env, false); err != nil {
			return nil, err
		}
	}
	if s.Having != nil {
		if err := bindExpr(s.Having, env, true); err != nil {
			return nil, err
		}
		aggregated = true
	}
	// ORDER BY may reference either source columns or projection aliases;
	// try the environment first and fall back to aliases at sort time.
	orderBound := make([]bool, len(s.OrderBy))
	for i, o := range s.OrderBy {
		if err := bindExpr(o.Expr, env, true); err == nil {
			orderBound[i] = true
			if exprHasAggregate(o.Expr) {
				aggregated = true
			}
		}
	}
	for i, fi := range s.From {
		if fi.JoinCond != nil {
			// ON may only reference tables joined so far.
			partial := &bindEnv{cols: env.cols[:tables[i].start+len(tables[i].schema.Cols)]}
			if err := bindExpr(fi.JoinCond, partial, false); err != nil {
				return nil, err
			}
		}
	}

	proj, labels, kinds, err := db.expandProjection(s, env)
	if err != nil {
		return nil, err
	}
	plan := &selectPlan{
		stmt:       s,
		tables:     tables,
		env:        env,
		aggregated: aggregated,
		orderBound: orderBound,
		proj:       proj,
		labels:     labels,
		kinds:      kinds,
	}
	// Access-path selection for the first FROM table. DISTINCT keeps
	// the first occurrence of each row, so index order survives dedup
	// and ORDER BY satisfaction remains valid under it.
	plan.path = planAccess(tables[0].data, tables[0].alias, s.Where,
		s.OrderBy, orderBound, aggregated, len(tables) == 1)
	planIndexOnlyAgg(plan)
	collectAggCalls(plan)
	planGroupAgg(plan)
	planGroupIndexFold(plan)
	planJoinProbes(plan)
	if plan.streamGroups && s.Limit >= 0 && s.Having == nil &&
		len(s.OrderBy) == 0 && !s.Distinct {
		plan.groupStop = s.Offset + s.Limit
	}
	plan.topK = len(s.OrderBy) > 0 && s.Limit >= 0 &&
		(plan.path == nil || !plan.path.satisfiesOrderBy)
	plan.cacheable = !planVolatile(plan)
	return plan, nil
}

// runSelect executes a bound plan against current state and materialises
// a fully detached result (Rows shares no mutable storage with the
// engine). It must not mutate the plan or its AST: concurrent readers
// share both. Caller holds db.mu (read suffices).
func (db *DB) runSelect(plan *selectPlan, params []sqltypes.Value) (*Rows, error) {
	// Pin the statement's snapshot: every scan, probe and index-only
	// aggregate below answers as of this commit stamp, no matter what
	// commits concurrently.
	return db.runSelectAt(plan, params, db.readSnapshot(), nil, nil)
}

// runSelectAt is runSelect at an explicit snapshot (snapLatest for the
// exclusive-lock transaction path). A non-nil tr collects per-node
// timings and heap-read counts for EXPLAIN ANALYZE. A non-nil ic makes
// every streaming loop below a cancellation checkpoint and charges
// buffered state against the memory budget.
func (db *DB) runSelectAt(plan *selectPlan, params []sqltypes.Value, snap uint64, tr *execTrace, ic *interrupt) (*Rows, error) {
	if plan.noFrom {
		return db.runSelectNoFrom(plan, params)
	}
	s := plan.stmt
	aggregated := plan.aggregated
	orderBound := plan.orderBound

	ctx := &evalCtx{params: params, now: db.nowFn(), snap: snap, intr: ic}
	if !db.legacyResults {
		// Result rows live in ar, owned by the returned Rows and released
		// on Rows.Close. Intermediate joined rows live in scratch, whose
		// chunks go back to the pool as soon as the statement finishes —
		// everything that references them (outRow.src/group, groupState
		// first rows) dies with this call; the projection copied their
		// values out into ar. A nil arena (legacy mode) makes every arena
		// alloc an ordinary make — see arena.go.
		ctx.ar = &rowArena{}
		ctx.scratch = &rowArena{}
		defer ctx.scratch.release()
	}

	// Index-only aggregation: COUNT/MIN/MAX over a residual-free path
	// answered from the index without materialising candidate rows.
	if plan.aggItems != nil && !db.fullScanOnly {
		endAgg := tr.span("index-only-agg")
		out, handled, err := db.runIndexOnlyAgg(plan, ctx)
		if err != nil {
			return nil, err
		}
		if handled {
			endAgg(int64(len(out.Data)))
			return out, nil
		}
	}

	proj, labels := plan.proj, plan.labels
	// The result owns its Columns and Kinds slices: the kind backfill
	// below writes to Kinds, Columns is an exported field callers may
	// touch, and the plan (with its labels and kinds) is shared across
	// concurrent executions.
	kinds := make([]sqltypes.Kind, len(plan.kinds))
	copy(kinds, plan.kinds)
	columns := make([]string, len(labels))
	copy(columns, labels)
	out := newRows(columns, kinds)
	out.arena = ctx.ar

	// Streaming columnar projection: a plain single-table SELECT with no
	// DISTINCT/ORDER BY to reshape the row set projects straight from
	// the scan through per-column batches into arena rows — no outRow
	// buffering, no per-row allocation, and an early stop at
	// OFFSET+LIMIT (legal: with no ORDER BY the row order is whatever
	// the scan delivers, and both paths scan in the same order).
	if !aggregated && !s.Distinct && len(s.OrderBy) == 0 &&
		len(plan.tables) == 1 && ctx.ar != nil {
		endScan := tr.span("scan")
		if err := db.projectSingleTable(plan, ctx, out); err != nil {
			return nil, err
		}
		endScan(int64(len(out.Data)))
		backfillKinds(out)
		return out, nil
	}

	var outRows []outRow
	orderApplied := false

	// Aggregated queries fold rows into per-group accumulators as they
	// stream out of the scan (agg.go) — no row set is retained. The
	// legacy materialise-then-group executor below survives behind
	// SetLegacyAggregation as the ablation baseline and property oracle.
	if aggregated && !db.legacyAggregation {
		endFold := tr.span("fold-agg")
		var err error
		outRows, err = db.runFoldAggregate(plan, ctx)
		if err != nil {
			return nil, err
		}
		endFold(int64(len(outRows)))
	} else {
		scanNode := "scan"
		if len(plan.tables) > 1 {
			scanNode = "join"
		}
		endScan := tr.span(scanNode)
		rows, whereApplied, oa, err := db.materialiseRows(plan, ctx)
		if err != nil {
			return nil, err
		}
		endScan(int64(len(rows)))
		orderApplied = oa

		// WHERE (already fused into the single-table scan).
		if s.Where != nil && !whereApplied {
			filtered := rows[:0]
			for _, r := range rows {
				ctx.vals = r
				v, err := evalExpr(s.Where, ctx)
				if err != nil {
					return nil, err
				}
				if !v.IsNull() && truthy(v) {
					filtered = append(filtered, r)
				}
			}
			rows = filtered
		}

		if aggregated {
			groups, err := groupRows(rows, s.GroupBy, ctx)
			if err != nil {
				return nil, err
			}
			for _, g := range groups {
				if s.Having != nil {
					v, err := evalAgg(s.Having, g, ctx)
					if err != nil {
						return nil, err
					}
					if v.IsNull() || !truthy(v) {
						continue
					}
				}
				vals := ctx.ar.alloc(len(proj))
				for i, e := range proj {
					v, err := evalAgg(e, g, ctx)
					if err != nil {
						return nil, err
					}
					vals[i] = v
				}
				outRows = append(outRows, outRow{vals: vals, group: g})
			}
		} else {
			for _, r := range rows {
				if err := ctx.intr.check(); err != nil {
					return nil, err
				}
				ctx.vals = r
				vals := ctx.ar.alloc(len(proj))
				for i, e := range proj {
					v, err := evalExpr(e, ctx)
					if err != nil {
						return nil, err
					}
					vals[i] = v
				}
				outRows = append(outRows, outRow{vals: vals, src: r})
			}
		}
	}

	// DISTINCT.
	if s.Distinct {
		seen := make(map[string]bool, len(outRows))
		dedup := outRows[:0]
		for _, r := range outRows {
			k := encodeKey(r.vals...)
			if !seen[k] {
				seen[k] = true
				dedup = append(dedup, r)
			}
		}
		outRows = dedup
	}

	// ORDER BY (skipped when the access path already delivered rows in
	// order — the index scan replaces the sort).
	if len(s.OrderBy) > 0 && !orderApplied {
		endSort := tr.span("sort")
		keys := make([][]sqltypes.Value, len(outRows))
		// One flat backing for the whole key set instead of a slice per
		// row: the keys are transient (dead once the sort returns), so
		// they stay off the arena — plain heap, but a single allocation.
		nOrd := len(s.OrderBy)
		flatKeys := make([]sqltypes.Value, len(outRows)*nOrd)
		for ri, r := range outRows {
			// Sort-key assembly is both a cancellation checkpoint and a
			// sort-buffer charge: the key set is O(rows × order cols).
			if err := ctx.intr.check(); err != nil {
				return nil, err
			}
			if err := ctx.intr.charge(rowFootprint(nOrd)); err != nil {
				return nil, err
			}
			ks := flatKeys[ri*nOrd : (ri+1)*nOrd : (ri+1)*nOrd]
			for oi, o := range s.OrderBy {
				var v sqltypes.Value
				var err error
				switch {
				case orderBound[oi] && aggregated && r.gs != nil:
					v, err = evalAggFold(o.Expr, plan, r.gs, ctx)
				case orderBound[oi] && aggregated:
					v, err = evalAgg(o.Expr, r.group, ctx)
				case orderBound[oi]:
					ctx.vals = r.src
					v, err = evalExpr(o.Expr, ctx)
				default:
					// Alias reference into the projection.
					cr, ok := o.Expr.(*ColRef)
					if !ok {
						return nil, fmt.Errorf("sqldb: cannot resolve ORDER BY expression")
					}
					j := -1
					for li, l := range labels {
						if strings.EqualFold(l, cr.Col) {
							j = li
							break
						}
					}
					if j < 0 {
						return nil, fmt.Errorf("sqldb: unknown ORDER BY column %s", cr.Col)
					}
					v = r.vals[j]
				}
				if err != nil {
					return nil, err
				}
				ks[oi] = v
			}
			keys[ri] = ks
		}
		// Coerce sort keys once per row: mixed time-vs-text and
		// numeric-vs-text comparisons would otherwise re-parse the
		// textual operand on every SortCompare call inside the sort.
		cells := annotateSortKeys(keys, len(s.OrderBy))
		less := func(a, b int) bool {
			for oi, o := range s.OrderBy {
				c := cmpSortCells(&cells[a][oi], &cells[b][oi])
				if c == 0 {
					continue
				}
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
			// Equal keys order by original position, which both makes
			// the comparator total (sort.Slice == stable sort) and lets
			// the top-K heap preserve first-appearance order on ties.
			return a < b
		}
		var idx []int
		if k := s.Offset + s.Limit; s.Limit >= 0 && k < len(outRows) {
			// ORDER BY ... LIMIT: only the k best rows survive the
			// OFFSET/LIMIT slice below, so select them with a bounded
			// heap — O(n log k) — instead of sorting everything.
			idx = topKIndices(len(outRows), k, less)
		} else {
			idx = make([]int, len(outRows))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
		}
		sorted := make([]outRow, len(idx))
		for i, j := range idx {
			sorted[i] = outRows[j]
		}
		outRows = sorted
		endSort(int64(len(outRows)))
	}

	// OFFSET / LIMIT.
	if s.Offset > 0 {
		if s.Offset >= len(outRows) {
			outRows = nil
		} else {
			outRows = outRows[s.Offset:]
		}
	}
	if s.Limit >= 0 && s.Limit < len(outRows) {
		outRows = outRows[:s.Limit]
	}

	out.Data = make([][]sqltypes.Value, len(outRows))
	for i, r := range outRows {
		out.Data[i] = r.vals
	}
	backfillKinds(out)
	return out, nil
}

// backfillKinds resolves statically unknown result kinds from the data.
func backfillKinds(out *Rows) {
	for ci, k := range out.Kinds {
		if k != sqltypes.KindNull {
			continue
		}
		for _, r := range out.Data {
			if !r[ci].IsNull() {
				out.Kinds[ci] = r[ci].Kind()
				break
			}
		}
	}
}

// projectSingleTable is the streaming columnar projection fast path:
// scan the single FROM table with the WHERE fused in, skip OFFSET kept
// rows, stop after LIMIT projected rows, and project through colBatch
// into arena-backed rows appended to out.Data. Requires ctx.ar != nil;
// only reached for non-aggregated, non-DISTINCT, unordered plans.
func (db *DB) projectSingleTable(plan *selectPlan, ctx *evalCtx, out *Rows) error {
	s := plan.stmt
	if s.Limit == 0 {
		return nil
	}
	ft := plan.tables[0]
	// Presize the row-pointer slice: append-doubling over 100k rows is
	// itself a measurable share of the legacy path's bytes/op.
	est := ft.data.live.Load()
	if s.Limit >= 0 && int64(s.Limit) < est {
		est = int64(s.Limit)
	}
	if est > 1<<20 {
		est = 1 << 20
	}
	if est > 0 && out.Data == nil {
		out.Data = make([][]sqltypes.Value, 0, est)
	}
	cb := newColBatch(plan.proj)
	skip := s.Offset
	kept := 0
	charge := rowFootprint(len(plan.proj))
	var scanErr error
	visit := func(vals []sqltypes.Value) bool {
		// Per-row cancellation checkpoint for both scan flavours below.
		if err := ctx.intr.check(); err != nil {
			scanErr = err
			return false
		}
		if s.Where != nil {
			ctx.vals = vals
			v, err := evalExpr(s.Where, ctx)
			if err != nil {
				scanErr = err
				return false
			}
			if v.IsNull() || !truthy(v) {
				return true
			}
		}
		if skip > 0 {
			skip--
			return true
		}
		// Projected rows are retained in the result: charge the budget.
		if err := ctx.intr.charge(charge); err != nil {
			scanErr = err
			return false
		}
		if cb.push(vals) {
			if err := cb.flush(ctx, ctx.ar, out); err != nil {
				scanErr = err
				return false
			}
		}
		kept++
		return s.Limit < 0 || kept < s.Limit
	}
	handled := false
	if plan.path != nil && !db.fullScanOnly {
		var err error
		handled, err = scanAccessPath(ft.data, plan.path, ctx, func(_ rowID, vals []sqltypes.Value) bool {
			return visit(vals)
		})
		if err != nil {
			return err
		}
	}
	if !handled && scanErr == nil {
		ft.data.scan(ctx.snap, func(_ rowID, vals []sqltypes.Value) bool {
			return visit(vals)
		})
	}
	if scanErr != nil {
		return scanErr
	}
	return cb.flush(ctx, ctx.ar, out)
}

// materialiseRows collects the candidate row set for the non-folding
// executor paths (non-aggregated queries and the legacy aggregation
// oracle): the single-table fast path with the WHERE fused into the
// scan, or the nested-loop join. whereApplied reports whether the WHERE
// clause has already been enforced; orderApplied whether rows arrived
// in ORDER BY order. Read-only on the plan.
func (db *DB) materialiseRows(plan *selectPlan, ctx *evalCtx) (rows [][]sqltypes.Value, whereApplied, orderApplied bool, err error) {
	s := plan.stmt
	tables := plan.tables
	if len(tables) == 1 {
		// Single-table fast path: no joined row to assemble, so reference
		// the stored row slices directly and fuse the WHERE filter into
		// the scan. Aliasing storage is safe — the engine never mutates a
		// row slice in place (updates swap in a fresh slice, deletes only
		// tombstone) and the projection copies values out, so nothing
		// mutable escapes into the result.
		whereApplied = true
		ft := tables[0]
		var scanErr error
		keep := func(vals []sqltypes.Value) (bool, error) {
			// Per-row cancellation checkpoint for both the access-path
			// and heap scans below.
			if err := ctx.intr.check(); err != nil {
				return false, err
			}
			if s.Where == nil {
				return true, nil
			}
			ctx.vals = vals
			v, err := evalExpr(s.Where, ctx)
			if err != nil {
				return false, err
			}
			return !v.IsNull() && truthy(v), nil
		}
		// When the access path delivers rows already in ORDER BY order
		// and no DISTINCT reshapes the set, the scan can stop as soon
		// as OFFSET+LIMIT kept rows are collected.
		stopAt := -1
		if plan.path != nil && plan.path.satisfiesOrderBy && !s.Distinct && !plan.aggregated && s.Limit >= 0 {
			stopAt = s.Offset + s.Limit
		}
		handled := false
		if plan.path != nil && !db.fullScanOnly {
			var scanHandledErr error
			handled, scanHandledErr = scanAccessPath(ft.data, plan.path, ctx, func(_ rowID, vals []sqltypes.Value) bool {
				ok, err := keep(vals)
				if err == nil && ok {
					// Retained rows buffer until projection/sort: charge
					// them against the memory budget.
					err = ctx.intr.charge(rowFootprint(len(vals)))
				}
				if err != nil {
					scanErr = err
					return false
				}
				if ok {
					rows = append(rows, vals)
				}
				return stopAt < 0 || len(rows) < stopAt
			})
			if scanHandledErr != nil {
				return nil, false, false, scanHandledErr
			}
			orderApplied = handled && plan.path.satisfiesOrderBy
		}
		if !handled {
			ft.data.scan(ctx.snap, func(id rowID, vals []sqltypes.Value) bool {
				ok, err := keep(vals)
				if err == nil && ok {
					err = ctx.intr.charge(rowFootprint(len(vals)))
				}
				if err != nil {
					scanErr = err
					return false
				}
				if ok {
					rows = append(rows, vals)
				}
				return true
			})
		}
		if scanErr != nil {
			return nil, false, false, scanErr
		}
	} else {
		var joinErr error
		rows, joinErr = db.joinRows(plan, ctx)
		if joinErr != nil {
			return nil, false, false, joinErr
		}
	}

	return rows, whereApplied, orderApplied, nil
}

// joinRows materialises the nested-loop join for multi-table SELECTs,
// building joined rows incrementally in FROM order with pushed ON
// predicates. Inner tables whose join key is indexed are probed per
// outer row (index nested-loop) instead of re-scanned; unindexed
// equi-joins build a hash table over the inner table once and probe it
// per outer row (hash join) instead of degrading to the cross product.
// For a two-table inner join the probed side is chosen at run time
// (see chooseSwap / chooseHashSwap). Read-only on the plan.
func (db *DB) joinRows(plan *selectPlan, ctx *evalCtx) ([][]sqltypes.Value, error) {
	s := plan.stmt
	if rev := db.chooseSwap(plan); rev != nil {
		t0 := plan.tables[0]
		return db.joinRowsSwapped(plan, ctx, func(c *evalCtx) ([][]sqltypes.Value, bool) {
			return probeJoin(t0.data, rev, c)
		})
	}
	if hj := db.chooseHashSwap(plan); hj != nil {
		hp, err := newHashProber(plan.tables[0].data, hj, ctx)
		if err != nil {
			return nil, err
		}
		return db.joinRowsSwapped(plan, ctx, hp.probe)
	}
	width := len(plan.env.cols)
	rows := make([][]sqltypes.Value, 1)
	rows[0] = make([]sqltypes.Value, 0, width)
	for i, ft := range plan.tables {
		cond := s.From[i].JoinCond
		left := s.From[i].LeftJoin
		var probe *joinProbe
		if plan.joins != nil && !db.fullScanOnly {
			probe = plan.joins[i]
		}
		// Hash-join fallback: equi-join conjuncts exist but no index
		// serves them. The table is built once per FROM item — O(|inner|)
		// — then probed per outer row, replacing the per-outer-row scan.
		var hashP *hashProber
		if plan.hashJoins != nil && probe == nil && !db.fullScanOnly {
			if hj := plan.hashJoins[i]; hj != nil && len(rows) > 0 {
				var err error
				hashP, err = newHashProber(ft.data, hj, ctx)
				if err != nil {
					return nil, err
				}
			}
		}
		var next [][]sqltypes.Value

		// Access-path fast path for the first table: the planner's
		// choice narrows the outer loop's candidates (the full WHERE is
		// still applied after the join, so over-approximation is safe).
		var candidates [][]sqltypes.Value
		haveCandidates := false
		if i == 0 && plan.path != nil && !db.fullScanOnly {
			handled, err := scanAccessPath(ft.data, plan.path, ctx, func(_ rowID, vals []sqltypes.Value) bool {
				candidates = append(candidates, vals)
				return true
			})
			if err != nil {
				return nil, err
			}
			haveCandidates = handled
		}
		scanInto := func(base []sqltypes.Value) error {
			matched := false
			appendRow := func(vals []sqltypes.Value) error {
				// Per-row checkpoint + joined-row buffer charge: the
				// nested loop assembles and retains every combined row.
				if err := ctx.intr.check(); err != nil {
					return err
				}
				if err := ctx.intr.charge(rowFootprint(width)); err != nil {
					return err
				}
				// Joined rows are statement-lifetime intermediates: they
				// live in the scratch arena (released when the statement
				// finishes), never in the result arena — the projection
				// copies values out of them.
				combined := ctx.scratch.allocCap(len(base), width)
				copy(combined, base)
				combined = append(combined, vals...)
				if cond != nil {
					ctx.vals = combined
					v, err := evalExpr(cond, ctx)
					if err != nil {
						return err
					}
					if v.IsNull() || !truthy(v) {
						return nil
					}
				}
				matched = true
				next = append(next, combined)
				return nil
			}
			var scanErr error
			probed := false
			switch {
			case haveCandidates:
				probed = true
				for _, vals := range candidates {
					if scanErr = appendRow(vals); scanErr != nil {
						break
					}
				}
			case probe != nil:
				// Index nested-loop: evaluate the outer-side probe
				// expressions against the accumulated row and look the
				// candidates up instead of scanning.
				ctx.vals = base
				if cands, handled := probeJoin(ft.data, probe, ctx); handled {
					probed = true
					for _, vals := range cands {
						if scanErr = appendRow(vals); scanErr != nil {
							break
						}
					}
				}
			case hashP != nil:
				// Hash join: look the candidates up in the prebuilt table.
				ctx.vals = base
				if cands, handled := hashP.probe(ctx); handled {
					probed = true
					for _, vals := range cands {
						if scanErr = appendRow(vals); scanErr != nil {
							break
						}
					}
				}
			}
			if !probed && scanErr == nil {
				ft.data.scan(ctx.snap, func(id rowID, vals []sqltypes.Value) bool {
					scanErr = appendRow(vals)
					return scanErr == nil
				})
			}
			if scanErr != nil {
				return scanErr
			}
			if left && !matched {
				combined := ctx.scratch.allocCap(len(base), width)
				copy(combined, base)
				for range ft.schema.Cols {
					combined = append(combined, sqltypes.Null)
				}
				next = append(next, combined)
			}
			return nil
		}
		for _, base := range rows {
			if err := scanInto(base); err != nil {
				return nil, err
			}
		}
		rows = next
	}
	return rows, nil
}

// chooseSwap decides whether a two-table inner join should run with the
// second table as the outer loop probing the first: when only the first
// table's join key is indexed, or when both are and the first table is
// larger (the smaller table should drive the outer loop).
func (db *DB) chooseSwap(plan *selectPlan) *joinProbe {
	if db.fullScanOnly || plan.revProbe == nil || len(plan.tables) != 2 {
		return nil
	}
	if fwd := plan.joins[1]; fwd != nil && plan.tables[0].data.live.Load() <= plan.tables[1].data.live.Load() {
		return nil
	}
	return plan.revProbe
}

// chooseHashSwap decides whether a fully-unindexed two-table inner
// equi-join should build its hash table on the FIRST table: when only
// that side has usable equi-conjuncts, or when both do and the first
// table is smaller (the hash table belongs on the smaller side, the
// larger one drives the outer loop). Index probes, when any exist,
// already won in chooseSwap / the forward loop.
func (db *DB) chooseHashSwap(plan *selectPlan) *hashJoinPlan {
	if db.fullScanOnly || plan.revHash == nil || len(plan.tables) != 2 {
		return nil
	}
	if plan.joins[1] != nil || plan.revProbe != nil {
		return nil // an index serves this join
	}
	if fwd := plan.hashJoins[1]; fwd != nil && plan.tables[1].data.live.Load() <= plan.tables[0].data.live.Load() {
		return nil // forward hash already builds on the smaller (inner) side
	}
	return plan.revHash
}

// joinRowsSwapped is the reversed two-table nested loop: scan table 1
// as the outer side and probe table 0 (via an index probe or a prebuilt
// hash table — probeFn encapsulates the lookup), assembling each
// combined row in declared column order so every bound expression keeps
// its slot. Only inner joins reach here (LEFT JOIN is direction-bound).
func (db *DB) joinRowsSwapped(plan *selectPlan, ctx *evalCtx, probeFn func(*evalCtx) ([][]sqltypes.Value, bool)) ([][]sqltypes.Value, error) {
	s := plan.stmt
	t0, t1 := plan.tables[0], plan.tables[1]
	width := len(plan.env.cols)
	start1 := t1.start
	cond := s.From[1].JoinCond
	var rows [][]sqltypes.Value
	var outerErr error
	// Scratch row for probe evaluation: the probe's expressions only
	// reference table 1 slots, so the table 0 prefix can stay stale.
	scratch := make([]sqltypes.Value, width)
	t1.data.scan(ctx.snap, func(_ rowID, v1 []sqltypes.Value) bool {
		// Outer-row checkpoint: probes that match nothing still visit
		// every outer row.
		if err := ctx.intr.check(); err != nil {
			outerErr = err
			return false
		}
		copy(scratch[start1:], v1)
		ctx.vals = scratch
		cands, handled := probeFn(ctx)
		emit := func(v0 []sqltypes.Value) bool {
			gerr := ctx.intr.check()
			if gerr == nil {
				gerr = ctx.intr.charge(rowFootprint(width))
			}
			if gerr != nil {
				outerErr = gerr
				return false
			}
			combined := ctx.scratch.alloc(width)
			copy(combined, v0)
			copy(combined[start1:], v1)
			if cond != nil {
				ctx.vals = combined
				cv, err := evalExpr(cond, ctx)
				if err != nil {
					outerErr = err
					return false
				}
				if cv.IsNull() || !truthy(cv) {
					return true
				}
			}
			rows = append(rows, combined)
			return true
		}
		if handled {
			for _, v0 := range cands {
				if !emit(v0) {
					return false
				}
			}
			return true
		}
		keep := true
		t0.data.scan(ctx.snap, func(_ rowID, v0 []sqltypes.Value) bool {
			keep = emit(v0)
			return keep
		})
		return keep
	})
	return rows, outerErr
}

// sortKeyCell is one ORDER BY key with its cross-kind coercions
// precomputed. SortCompare parses a textual operand every time it meets
// a TIMESTAMP or numeric on the other side; annotateSortKeys performs
// that coercion once per row so the O(n log n) comparisons are parse
// free, with ordering semantics identical to SortCompare's.
type sortKeyCell struct {
	v       sqltypes.Value
	timeVal sqltypes.Value // parsed-timestamp twin of a textual v
	timeOK  bool
	numVal  sqltypes.Value // numeric twin of a textual v
	numOK   bool
}

// annotateSortKeys builds the coerced cells column by column: twins are
// only computed when the column actually mixes kinds, so homogeneous
// sorts (the common case) pay one kind sweep and nothing else.
func annotateSortKeys(keys [][]sqltypes.Value, ncols int) [][]sortKeyCell {
	cells := make([][]sortKeyCell, len(keys))
	flat := make([]sortKeyCell, len(keys)*ncols) // one backing, not one per row
	for ri, ks := range keys {
		row := flat[ri*ncols : (ri+1)*ncols : (ri+1)*ncols]
		for oi := 0; oi < ncols; oi++ {
			row[oi].v = ks[oi]
		}
		cells[ri] = row
	}
	for oi := 0; oi < ncols; oi++ {
		hasTime, hasNum, hasText := false, false, false
		for _, ks := range keys {
			switch ks[oi].Kind() {
			case sqltypes.KindTime:
				hasTime = true
			case sqltypes.KindInt, sqltypes.KindDouble:
				hasNum = true
			case sqltypes.KindString, sqltypes.KindClob:
				hasText = true
			}
		}
		if !hasText || (!hasTime && !hasNum) {
			continue
		}
		for ri := range cells {
			c := &cells[ri][oi]
			if !c.v.IsTextual() {
				continue
			}
			if hasTime {
				if t, err := sqltypes.ParseTimestamp(c.v.Str()); err == nil {
					c.timeVal = sqltypes.NewTime(t)
					c.timeOK = true
				}
			}
			if hasNum {
				if f, ok := c.v.AsDouble(); ok {
					c.numVal = sqltypes.NewDouble(f)
					c.numOK = true
				}
			}
		}
	}
	return cells
}

// cmpSortCells mirrors sqltypes.SortCompare exactly, substituting the
// precomputed twins wherever SortCompare would coerce a textual operand.
func cmpSortCells(a, b *sortKeyCell) int {
	an, bn := a.v.IsNull(), b.v.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	kindOrder := func() int {
		ak, bk := int64(a.v.Kind()), int64(b.v.Kind())
		switch {
		case ak < bk:
			return -1
		case ak > bk:
			return 1
		default:
			return 0
		}
	}
	switch {
	case a.v.Kind() == sqltypes.KindTime && b.v.IsTextual():
		if b.timeOK {
			if c, ok := sqltypes.Compare(a.v, b.timeVal); ok {
				return c
			}
		}
		return kindOrder()
	case a.v.IsTextual() && b.v.Kind() == sqltypes.KindTime:
		if a.timeOK {
			if c, ok := sqltypes.Compare(a.timeVal, b.v); ok {
				return c
			}
		}
		return kindOrder()
	case a.v.IsTextual() && b.v.IsNumeric():
		if a.numOK {
			if c, ok := sqltypes.Compare(a.numVal, b.v); ok {
				return c
			}
		}
		return kindOrder()
	case a.v.IsNumeric() && b.v.IsTextual():
		if b.numOK {
			if c, ok := sqltypes.Compare(a.v, b.numVal); ok {
				return c
			}
		}
		return kindOrder()
	}
	return sqltypes.SortCompare(a.v, b.v)
}

// topKIndices returns the indices of the k least rows under less, in
// sorted order, without sorting the rest: a size-k max-heap (root =
// worst kept candidate) admits each row in O(log k), then the k
// survivors sort among themselves. less must be total (topKIndices is
// used with the position tiebreaker above), which also keeps the
// selection stable: a later row never displaces an equal earlier one.
func topKIndices(n, k int, less func(a, b int) bool) []int {
	if k <= 0 {
		return nil
	}
	h := make([]int, 0, k)
	siftDown := func(i int) {
		for {
			c := 2*i + 1
			if c >= len(h) {
				return
			}
			// Pick the worse child (max-heap on "sorts after").
			if c+1 < len(h) && less(h[c], h[c+1]) {
				c++
			}
			if !less(h[i], h[c]) {
				return
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
	}
	for i := 0; i < n; i++ {
		if len(h) < k {
			h = append(h, i)
			for c := len(h) - 1; c > 0; {
				p := (c - 1) / 2
				if !less(h[p], h[c]) {
					break
				}
				h[p], h[c] = h[c], h[p]
				c = p
			}
			continue
		}
		if less(i, h[0]) {
			h[0] = i
			siftDown(0)
		}
	}
	sort.Slice(h, func(a, b int) bool { return less(h[a], h[b]) })
	return h
}

// runSelectNoFrom evaluates a FROM-less SELECT once against an empty
// row. Binding already happened at plan time; this path is read-only on
// the plan like runSelect.
func (db *DB) runSelectNoFrom(plan *selectPlan, params []sqltypes.Value) (*Rows, error) {
	ctx := &evalCtx{params: params, now: db.nowFn()}
	vals := make([]sqltypes.Value, len(plan.proj))
	kinds := make([]sqltypes.Kind, len(plan.proj))
	for i, e := range plan.proj {
		v, err := evalExpr(e, ctx)
		if err != nil {
			return nil, err
		}
		vals[i] = v
		kinds[i] = v.Kind()
	}
	columns := make([]string, len(plan.labels))
	copy(columns, plan.labels)
	out := newRows(columns, kinds)
	out.Data = [][]sqltypes.Value{vals}
	return out, nil
}

// expandProjection turns SELECT items into a flat expression list with
// labels and static kinds where known. The ColRefs it creates for stars
// are plan-owned and never rebound.
func (db *DB) expandProjection(s *SelectStmt, env *bindEnv) ([]Expr, []string, []sqltypes.Kind, error) {
	var (
		proj   []Expr
		labels []string
		kinds  []sqltypes.Kind
	)
	addCol := func(i int) {
		qc := env.cols[i]
		proj = append(proj, &ColRef{Table: qc.table, Col: qc.col, Index: i})
		labels = append(labels, qc.col)
		kinds = append(kinds, db.colKind(qc))
	}
	for _, item := range s.Items {
		switch {
		case item.Star && item.Table == "":
			for i := range env.cols {
				addCol(i)
			}
		case item.Star:
			t := strings.ToUpper(item.Table)
			found := false
			for i, qc := range env.cols {
				if qc.table == t {
					addCol(i)
					found = true
				}
			}
			if !found {
				return nil, nil, nil, fmt.Errorf("sqldb: unknown table %s in %s.*", item.Table, item.Table)
			}
		default:
			proj = append(proj, item.Expr)
			label := item.Alias
			if label == "" {
				label = exprLabel(item.Expr)
			}
			labels = append(labels, label)
			if cr, ok := item.Expr.(*ColRef); ok && cr.Index >= 0 {
				kinds = append(kinds, db.colKind(env.cols[cr.Index]))
			} else {
				kinds = append(kinds, sqltypes.KindNull)
			}
		}
	}
	return proj, labels, kinds, nil
}

// colKind resolves the declared kind of a qualified column; the alias may
// differ from the table name, so search all tables for the column.
func (db *DB) colKind(qc qualCol) sqltypes.Kind {
	if t, ok := db.cat.Table(qc.table); ok {
		if c, ok := t.Col(qc.col); ok {
			return c.Type.Kind
		}
	}
	for _, name := range db.cat.TableNames() {
		t, _ := db.cat.Table(name)
		if c, ok := t.Col(qc.col); ok {
			return c.Type.Kind
		}
	}
	return sqltypes.KindNull
}

// groupRows partitions rows by the GROUP BY key expressions. With no
// GROUP BY the whole input is one group (aggregate-only query) — even
// when empty, per SQL (COUNT(*) over no rows is 0).
func groupRows(rows [][]sqltypes.Value, groupBy []Expr, ctx *evalCtx) ([][][]sqltypes.Value, error) {
	if len(groupBy) == 0 {
		return [][][]sqltypes.Value{rows}, nil
	}
	var order []string
	groups := make(map[string][][]sqltypes.Value)
	for _, r := range rows {
		ctx.vals = r
		key := make([]sqltypes.Value, len(groupBy))
		for i, g := range groupBy {
			v, err := evalExpr(g, ctx)
			if err != nil {
				return nil, err
			}
			key[i] = v
		}
		k := encodeKey(key...)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	out := make([][][]sqltypes.Value, len(order))
	for i, k := range order {
		out[i] = groups[k]
	}
	return out, nil
}

// evalAgg evaluates an expression over a group: aggregate calls consume
// the whole group; everything else is evaluated against the group's
// first row (the GROUP BY key columns are constant within a group).
func evalAgg(e Expr, group [][]sqltypes.Value, ctx *evalCtx) (sqltypes.Value, error) {
	switch n := e.(type) {
	case *FuncCall:
		if isAggregate(n.Name) {
			return computeAggregate(n, group, ctx)
		}
		// Scalar function: evaluate args in aggregate mode.
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			v, err := evalAgg(a, group, ctx)
			if err != nil {
				return sqltypes.Null, err
			}
			args[i] = &Literal{Val: v}
		}
		return evalFunc(&FuncCall{Name: n.Name, Args: args}, ctx)
	case *Binary:
		if n.Op == "AND" || n.Op == "OR" {
			// Preserve three-valued logic by substituting evaluated sides.
			l, err := evalAgg(n.L, group, ctx)
			if err != nil {
				return sqltypes.Null, err
			}
			r, err := evalAgg(n.R, group, ctx)
			if err != nil {
				return sqltypes.Null, err
			}
			return evalBinary(&Binary{Op: n.Op, L: &Literal{Val: l}, R: &Literal{Val: r}}, ctx)
		}
		l, err := evalAgg(n.L, group, ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		r, err := evalAgg(n.R, group, ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		return evalBinary(&Binary{Op: n.Op, L: &Literal{Val: l}, R: &Literal{Val: r}}, ctx)
	case *Unary:
		v, err := evalAgg(n.X, group, ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		return evalUnary(&Unary{Op: n.Op, X: &Literal{Val: v}}, ctx)
	default:
		if len(group) == 0 {
			// Aggregate query over an empty input: scalar parts are NULL.
			if _, ok := e.(*Literal); ok {
				return evalExpr(e, ctx)
			}
			return sqltypes.Null, nil
		}
		ctx.vals = group[0]
		return evalExpr(e, ctx)
	}
}

func computeAggregate(n *FuncCall, group [][]sqltypes.Value, ctx *evalCtx) (sqltypes.Value, error) {
	if n.Star {
		return sqltypes.NewInt(int64(len(group))), nil
	}
	if len(n.Args) != 1 {
		return sqltypes.Null, fmt.Errorf("sqldb: %s expects exactly one argument", n.Name)
	}
	var (
		count   int64
		sumF    float64
		allInt  = true
		sumI    int64
		minV    = sqltypes.Null
		maxV    = sqltypes.Null
		started bool
	)
	for _, r := range group {
		ctx.vals = r
		v, err := evalExpr(n.Args[0], ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		if v.IsNull() {
			continue
		}
		count++
		switch n.Name {
		case "COUNT":
		case "SUM", "AVG":
			f, ok := v.AsDouble()
			if !ok {
				return sqltypes.Null, fmt.Errorf("sqldb: %s over non-numeric value", n.Name)
			}
			sumF += f
			if v.Kind() == sqltypes.KindInt {
				sumI += v.Int()
			} else {
				allInt = false
			}
		case "MIN", "MAX":
			if !started {
				minV, maxV = v, v
				started = true
				continue
			}
			if c, ok := sqltypes.Compare(v, minV); ok && c < 0 {
				minV = v
			}
			if c, ok := sqltypes.Compare(v, maxV); ok && c > 0 {
				maxV = v
			}
		}
	}
	switch n.Name {
	case "COUNT":
		return sqltypes.NewInt(count), nil
	case "SUM":
		if count == 0 {
			return sqltypes.Null, nil
		}
		if allInt {
			return sqltypes.NewInt(sumI), nil
		}
		return sqltypes.NewDouble(sumF), nil
	case "AVG":
		if count == 0 {
			return sqltypes.Null, nil
		}
		return sqltypes.NewDouble(sumF / float64(count)), nil
	case "MIN":
		return minV, nil
	case "MAX":
		return maxV, nil
	}
	return sqltypes.Null, fmt.Errorf("sqldb: unknown aggregate %s", n.Name)
}
