package sqldb

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/sqltypes"
)

func TestPrepareSharesCachedStmt(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(20))`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'a'), (2, 'b')`)

	s1, err := db.Prepare(`SELECT v FROM t WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := db.Prepare(`SELECT v FROM t WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("identical SQL text should share one cached Stmt")
	}
	rows, err := s1.Query(sqltypes.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].AsString() != "b" {
		t.Fatalf("got %v", rows.Data)
	}
}

func TestPrepareRejectsTxControl(t *testing.T) {
	db := memDB(t)
	if _, err := db.Prepare(`BEGIN`); err == nil {
		t.Fatal("Prepare(BEGIN) should fail")
	}
}

func TestStmtQueryRejectsDML(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER)`)
	st, err := db.Prepare(`INSERT INTO t VALUES (1)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Query(); err == nil {
		t.Fatal("Query on a DML statement should fail")
	}
	if _, err := st.Exec(); err != nil {
		t.Fatalf("Exec on prepared INSERT: %v", err)
	}
}

// A DDL statement between prepared executions must not let the old plan
// survive: the column bindings of the recreated table differ, and a
// stale plan would read the wrong slots.
func TestPlanCacheInvalidationOnDDL(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (a VARCHAR(10), b VARCHAR(10))`)
	mustExec(t, db, `INSERT INTO t VALUES ('a-old', 'b-old')`)

	st, err := db.Prepare(`SELECT b FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].AsString() != "b-old" {
		t.Fatalf("before DDL: got %v", rows.Data)
	}

	// Recreate the table with B first: a stale plan bound to slot 1
	// would now return column A's value.
	mustExec(t, db, `DROP TABLE t`)
	mustExec(t, db, `CREATE TABLE t (b VARCHAR(10), a VARCHAR(10))`)
	mustExec(t, db, `INSERT INTO t VALUES ('b-new', 'a-new')`)

	rows, err = st.Query()
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].AsString(); got != "b-new" {
		t.Fatalf("after DDL: got %q, want %q (stale plan served)", got, "b-new")
	}
}

func TestPreparedStmtSurvivesIndexDDL(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER, v VARCHAR(10))`)
	for i := 0; i < 20; i++ {
		mustExec(t, db, `INSERT INTO t VALUES (?, ?)`,
			sqltypes.NewInt(int64(i%5)), sqltypes.NewString(fmt.Sprintf("v%d", i)))
	}
	st, err := db.Prepare(`SELECT COUNT(*) FROM t WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		t.Helper()
		rows, err := st.Query(sqltypes.NewInt(3))
		if err != nil {
			t.Fatal(err)
		}
		if rows.Data[0][0].Int() != 4 {
			t.Fatalf("count = %v, want 4", rows.Data[0][0])
		}
	}
	check()
	mustExec(t, db, `CREATE INDEX idx_id ON t (id)`)
	check() // re-planned: now uses the index
	mustExec(t, db, `DROP INDEX idx_id`)
	check()
}

func TestPreparedStmtOnDroppedTable(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER)`)
	st, err := db.Prepare(`SELECT id FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Query(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `DROP TABLE t`)
	if _, err := st.Query(); err == nil {
		t.Fatal("query against a dropped table should fail, not serve a stale plan")
	}
}

func TestPlanCacheEviction(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER)`)
	db.SetPlanCacheCapacity(2)
	for i := 0; i < 5; i++ {
		mustQuery(t, db, fmt.Sprintf(`SELECT id FROM t WHERE id = %d`, i))
	}
	if n := db.PlanCacheLen(); n != 2 {
		t.Fatalf("cache len = %d, want 2", n)
	}
	// An evicted statement handle keeps working on its own.
	st, err := db.Prepare(`SELECT id FROM t WHERE id = 0`)
	if err != nil {
		t.Fatal(err)
	}
	db.SetPlanCacheCapacity(0) // drop everything, disable caching
	if _, err := st.Query(); err != nil {
		t.Fatalf("evicted stmt must stay usable: %v", err)
	}
	if n := db.PlanCacheLen(); n != 0 {
		t.Fatalf("disabled cache holds %d entries", n)
	}
	mustQuery(t, db, `SELECT id FROM t`) // uncached path still works
}

// TestConcurrentQueryExec drives concurrent readers against concurrent
// writers and occasional DDL; run with -race. Readers repeatedly use the
// same SQL text so they share one cached plan, which is the interesting
// sharing to race-test.
func TestConcurrentQueryExec(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, sim VARCHAR(20), v DOUBLE)`)
	for i := 0; i < 100; i++ {
		mustExec(t, db, `INSERT INTO t VALUES (?, ?, ?)`,
			sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprintf("S%02d", i%10)),
			sqltypes.NewDouble(float64(i)))
	}

	const (
		readers       = 8
		writers       = 2
		opsPerRoutine = 200
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers+writers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerRoutine; i++ {
				rows, err := db.Query(`SELECT sim, COUNT(*), AVG(v) FROM t WHERE v >= ? GROUP BY sim ORDER BY sim`,
					sqltypes.NewDouble(10))
				if err != nil {
					errc <- err
					return
				}
				if len(rows.Columns) != 3 {
					errc <- fmt.Errorf("bad shape %v", rows.Columns)
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerRoutine; i++ {
				id := int64(1000 + w*opsPerRoutine + i)
				if _, err := db.Exec(`INSERT INTO t VALUES (?, 'SXX', 1.5)`, sqltypes.NewInt(id)); err != nil {
					errc <- err
					return
				}
				if _, err := db.Exec(`DELETE FROM t WHERE id = ?`, sqltypes.NewInt(id)); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	// DDL churn: forces plan re-binding while readers are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := db.Exec(`CREATE INDEX idx_sim ON t (sim)`); err != nil {
				errc <- err
				return
			}
			if _, err := db.Exec(`DROP INDEX idx_sim`); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestRowsDetachedFromStorage: a result must stay stable after later
// writes to the same table.
func TestRowsDetachedFromStorage(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(20))`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'before')`)
	rows := mustQuery(t, db, `SELECT * FROM t`)
	mustExec(t, db, `UPDATE t SET v = 'after' WHERE id = 1`)
	mustExec(t, db, `DELETE FROM t WHERE id = 1`)
	if got := rows.Get(0, "v").AsString(); got != "before" {
		t.Fatalf("result mutated by later writes: %q", got)
	}
}

func TestRowsColIndexCache(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (alpha INTEGER, beta INTEGER, gamma INTEGER)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 2, 3)`)
	rows := mustQuery(t, db, `SELECT * FROM t`)
	if i := rows.ColIndex("beta"); i != 1 {
		t.Fatalf("ColIndex(beta) = %d", i)
	}
	if i := rows.ColIndex("GAMMA"); i != 2 {
		t.Fatalf("ColIndex(GAMMA) = %d", i)
	}
	if i := rows.ColIndex("missing"); i != -1 {
		t.Fatalf("ColIndex(missing) = %d", i)
	}
	if v := rows.Get(0, "gamma"); v.Int() != 3 {
		t.Fatalf("Get = %v", v)
	}
	// Hand-constructed Rows (no cache) still resolve by linear scan.
	hand := &Rows{Columns: []string{"X", "Y"}}
	if i := hand.ColIndex("y"); i != 1 {
		t.Fatalf("uncached ColIndex = %d", i)
	}
}
