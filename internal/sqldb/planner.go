package sqldb

import (
	"fmt"
	"strings"

	"repro/internal/sqltypes"
)

// The access-path planner.
//
// planAccess inspects the WHERE conjuncts (and, for single-table
// queries, the ORDER BY) of a bound SELECT and picks how the executor
// reaches the first FROM table's rows:
//
//	equality on a hash-indexed column   → O(1) point lookup
//	equality on an ordered column       → O(log n) point lookup
//	range / BETWEEN on an ordered column→ ordered range scan
//	IS [NOT] NULL on an ordered column  → scan of / past the NULL key
//	ORDER BY an ordered column          → full in-order scan (no sort)
//	otherwise                           → heap scan
//
// The chosen path is stored inside the cached selectPlan, so prepared
// statements re-run it without re-analysis; the schema epoch invalidates
// plans when indexes are created or dropped. Every path over-approximates
// — the executor always re-applies the residual WHERE to candidate rows
// — so the planner only needs monotone key bounds, never exact ones.
// Probe values are aligned with the indexed column's type at execution
// time (parameters are unknown at plan time); when alignment fails the
// executor transparently falls back to a heap scan with identical
// semantics.

// accessPathKind enumerates the executor strategies.
type accessPathKind uint8

const (
	pathHashEq      accessPathKind = iota // hash index point lookup
	pathOrderedEq                         // ordered index point lookup
	pathOrderedRange                      // ordered index range scan
	pathOrderedNull                       // IS NULL / IS NOT NULL via ordered index
	pathOrderedScan                       // full in-order scan (ORDER BY only)
)

// accessPath is the planner's decision for one table. All expression
// fields are row-independent (literals, parameters, constant function
// calls) and are evaluated once per execution.
type accessPath struct {
	kind   accessPathKind
	table  string // table name (diagnostics)
	column string // upper-cased indexed column
	colPos int    // column position in the schema

	eq      Expr // pathHashEq / pathOrderedEq probe
	lo, hi  Expr // pathOrderedRange bounds; nil = open end
	notNull bool // pathOrderedNull: true = IS NOT NULL

	desc             bool // scan direction (ordered paths)
	satisfiesOrderBy bool // rows arrive in ORDER BY order; skip the sort
}

// String renders the path for EXPLAIN-style introspection and tests.
func (p *accessPath) String() string {
	if p == nil {
		return "full-scan"
	}
	target := p.table + "." + p.column
	suffix := ""
	if p.satisfiesOrderBy {
		suffix = " order"
		if p.desc {
			suffix = " order-desc"
		}
	}
	switch p.kind {
	case pathHashEq:
		return "hash-eq(" + target + ")" + suffix
	case pathOrderedEq:
		return "eq(" + target + ")" + suffix
	case pathOrderedRange:
		return "range(" + target + ")" + suffix
	case pathOrderedNull:
		if p.notNull {
			return "not-null(" + target + ")" + suffix
		}
		return "null(" + target + ")" + suffix
	case pathOrderedScan:
		return "ordered-scan(" + target + ")" + suffix
	}
	return "full-scan"
}

// colPred accumulates the indexable predicates on one column.
type colPred struct {
	eq        Expr
	lo, hi    Expr
	isNull    bool
	isNotNull bool
}

// planAccess picks the access path for the first FROM table of a bound
// SELECT (or for a DML statement's target table). orderBy/orderBound
// are consulted only when single is true — ORDER BY satisfaction makes
// no sense once rows are joined or grouped.
func planAccess(td *tableData, alias string, where Expr, orderBy []OrderItem, orderBound []bool, aggregated, single bool) *accessPath {
	preds := collectColPreds(where, alias, td.schema)

	// Score the candidate paths per indexed column, preferring the
	// cheapest: hash equality, ordered equality, bounded range, half
	// range, null tests. Columns are visited in declaration order so
	// the choice is deterministic.
	var best *accessPath
	bestScore := 0
	for pos, col := range td.schema.Cols {
		idx, ok := td.indexes[col.Name]
		if !ok {
			continue
		}
		p, okp := preds[col.Name]
		if !okp {
			continue
		}
		_, ordered := idx.(rangeIndex)
		var cand *accessPath
		score := 0
		switch {
		case p.eq != nil && !ordered:
			cand = &accessPath{kind: pathHashEq, eq: p.eq}
			score = 5
		case p.eq != nil:
			cand = &accessPath{kind: pathOrderedEq, eq: p.eq}
			score = 4
		case ordered && p.lo != nil && p.hi != nil:
			cand = &accessPath{kind: pathOrderedRange, lo: p.lo, hi: p.hi}
			score = 3
		case ordered && (p.lo != nil || p.hi != nil):
			cand = &accessPath{kind: pathOrderedRange, lo: p.lo, hi: p.hi}
			score = 2
		case ordered && (p.isNull || p.isNotNull):
			cand = &accessPath{kind: pathOrderedNull, notNull: p.isNotNull}
			score = 1
		}
		if cand != nil && score > bestScore {
			cand.table = td.schema.Name
			cand.column = col.Name
			cand.colPos = pos
			best = cand
			bestScore = score
		}
	}

	// ORDER BY satisfaction: a single-key ORDER BY on a column our
	// ordered path already scans in key order, or — when no predicate
	// path was found — a full in-order scan of that column's ordered
	// index in place of scan+sort.
	if single && !aggregated && len(orderBy) == 1 && len(orderBound) == 1 && orderBound[0] {
		if obCol, ok := orderByColumn(orderBy[0].Expr, alias, td.schema); ok {
			switch {
			case best != nil && best.column == obCol:
				switch best.kind {
				case pathOrderedEq, pathOrderedRange, pathOrderedNull:
					best.desc = orderBy[0].Desc
					best.satisfiesOrderBy = true
				case pathHashEq:
					// Every candidate shares one value in the ORDER BY
					// column, so any emission order is sorted.
					best.satisfiesOrderBy = true
				}
			case best == nil:
				if idx, ok := td.indexes[obCol]; ok {
					if _, ordered := idx.(rangeIndex); ordered {
						best = &accessPath{
							kind:             pathOrderedScan,
							table:            td.schema.Name,
							column:           obCol,
							colPos:           td.schema.ColIndex(obCol),
							desc:             orderBy[0].Desc,
							satisfiesOrderBy: true,
						}
					}
				}
			}
		}
	}
	return best
}

// orderByColumn recognises an ORDER BY key that is a plain reference to
// one of this table's columns.
func orderByColumn(e Expr, alias string, schema *TableSchema) (string, bool) {
	cr, ok := e.(*ColRef)
	if !ok {
		return "", false
	}
	if cr.Table != "" && !strings.EqualFold(cr.Table, alias) {
		return "", false
	}
	col := strings.ToUpper(cr.Col)
	if schema.ColIndex(col) < 0 {
		return "", false
	}
	return col, true
}

// collectColPreds walks the top-level AND tree gathering indexable
// predicates per column of the target table.
func collectColPreds(where Expr, alias string, schema *TableSchema) map[string]*colPred {
	preds := make(map[string]*colPred)
	at := func(col string) *colPred {
		p, ok := preds[col]
		if !ok {
			p = &colPred{}
			preds[col] = p
		}
		return p
	}
	colOf := func(e Expr) (string, bool) {
		cr, ok := e.(*ColRef)
		if !ok {
			return "", false
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, alias) {
			return "", false
		}
		col := strings.ToUpper(cr.Col)
		if schema.ColIndex(col) < 0 {
			return "", false
		}
		return col, true
	}
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case *Binary:
			if n.Op == "AND" {
				walk(n.L)
				walk(n.R)
				return
			}
			col, l2r := colOf(n.L)
			val := n.R
			op := n.Op
			if !l2r {
				var ok bool
				col, ok = colOf(n.R)
				if !ok {
					return
				}
				val = n.L
				// Flip the comparison for "const op col".
				switch op {
				case "<":
					op = ">"
				case "<=":
					op = ">="
				case ">":
					op = "<"
				case ">=":
					op = "<="
				}
			}
			if !isRowIndependent(val) {
				return
			}
			p := at(col)
			switch op {
			case "=":
				if p.eq == nil {
					p.eq = val
				}
			case ">", ">=":
				if p.lo == nil {
					p.lo = val
				}
			case "<", "<=":
				if p.hi == nil {
					p.hi = val
				}
			}
		case *BetweenExpr:
			if n.Not {
				return
			}
			col, ok := colOf(n.X)
			if !ok || !isRowIndependent(n.Lo) || !isRowIndependent(n.Hi) {
				return
			}
			p := at(col)
			if p.lo == nil {
				p.lo = n.Lo
			}
			if p.hi == nil {
				p.hi = n.Hi
			}
		case *IsNullExpr:
			if col, ok := colOf(n.X); ok {
				if n.Not {
					at(col).isNotNull = true
				} else {
					at(col).isNull = true
				}
			}
		}
	}
	if where != nil {
		walk(where)
	}
	return preds
}

// isRowIndependent reports whether e can be evaluated without a row:
// no column references, no aggregates. Such expressions (literals,
// parameters, DLVALUE(?), NOW()) are usable as index probes.
func isRowIndependent(e Expr) bool {
	ok := true
	walkExpr(e, func(x Expr) bool {
		switch n := x.(type) {
		case *ColRef:
			ok = false
			return false
		case *FuncCall:
			if isAggregate(n.Name) {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// evalProbe evaluates a row-independent probe expression.
func evalProbe(e Expr, ctx *evalCtx) (sqltypes.Value, error) {
	saved := ctx.vals
	ctx.vals = nil
	v, err := evalExpr(e, ctx)
	ctx.vals = saved
	return v, err
}

// scanAccessPath drives the chosen path against current table state,
// emitting candidate rows (in key order for ordered paths). It returns
// handled=false when the path cannot serve this execution — the probe
// value does not align with the indexed column's type, or evaluating a
// probe failed — and the caller must fall back to a heap scan, which
// preserves exact comparison semantics. Candidates over-approximate the
// WHERE clause: callers always re-apply the residual predicate.
//
// Value-typed range bounds are scanned inclusively even for strict
// comparisons: distinct values can share an encoded key (float64 image
// of huge integers), so exclusion happens in the residual predicate
// where it is exact. The NULL boundary key is exact and is excluded
// directly for IS NOT NULL.
func scanAccessPath(td *tableData, path *accessPath, ctx *evalCtx, emit func(id rowID, vals []sqltypes.Value) bool) (bool, error) {
	idx := td.indexes[path.column]
	if idx == nil {
		return false, nil
	}
	colKind := td.schema.Cols[path.colPos].Type.Kind

	emitIDs := func(ids []rowID) bool {
		for _, id := range ids {
			vals, live := td.get(id)
			if !live {
				continue
			}
			if !emit(id, vals) {
				return false
			}
		}
		return true
	}

	// encodeBound evaluates and aligns one range bound; key=="" with
	// ok=true means the bound is absent (open end). Evaluation errors
	// force the scan fallback, where the residual predicate surfaces
	// them with full-scan semantics.
	encodeBound := func(e Expr) (key string, null, ok bool) {
		if e == nil {
			return "", false, true
		}
		v, err := evalProbe(e, ctx)
		if err != nil {
			return "", false, false
		}
		if v.IsNull() {
			return "", true, true
		}
		pv, okp := probeValue(colKind, v)
		if !okp {
			return "", false, false
		}
		return encodeKey(pv), false, true
	}

	switch path.kind {
	case pathHashEq, pathOrderedEq:
		v, err := evalProbe(path.eq, ctx)
		if err != nil {
			return false, nil
		}
		if v.IsNull() {
			return true, nil // col = NULL is UNKNOWN: no rows
		}
		pv, ok := probeValue(colKind, v)
		if !ok {
			return false, nil
		}
		emitIDs(idx.lookupKey(encodeKey(pv)))
		return true, nil

	case pathOrderedRange:
		rix, ok := idx.(rangeIndex)
		if !ok {
			return false, nil
		}
		loKey, loNull, loOK := encodeBound(path.lo)
		hiKey, hiNull, hiOK := encodeBound(path.hi)
		if !loOK || !hiOK {
			return false, nil
		}
		if loNull || hiNull {
			return true, nil // comparison with NULL matches nothing
		}
		var lo, hi *keyBound
		if path.lo != nil {
			lo = &keyBound{key: loKey, incl: true}
		} else {
			// Open low end still excludes NULLs: col < x is UNKNOWN
			// for NULL, and the residual filter would drop them anyway.
			lo = &keyBound{key: nullKey, incl: false}
		}
		if path.hi != nil {
			hi = &keyBound{key: hiKey, incl: true}
		}
		rix.scanRange(lo, hi, path.desc, func(_ string, ids []rowID) bool {
			return emitIDs(ids)
		})
		return true, nil

	case pathOrderedNull:
		rix, ok := idx.(rangeIndex)
		if !ok {
			return false, nil
		}
		if path.notNull {
			rix.scanRange(&keyBound{key: nullKey, incl: false}, nil, path.desc, func(_ string, ids []rowID) bool {
				return emitIDs(ids)
			})
		} else {
			// All NULLs share one key; scan direction is immaterial.
			emitIDs(idx.lookupKey(nullKey))
		}
		return true, nil

	case pathOrderedScan:
		rix, ok := idx.(rangeIndex)
		if !ok {
			return false, nil
		}
		rix.scanRange(nil, nil, path.desc, func(_ string, ids []rowID) bool {
			return emitIDs(ids)
		})
		return true, nil
	}
	return false, fmt.Errorf("sqldb: unknown access path kind %d", path.kind)
}
