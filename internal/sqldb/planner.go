package sqldb

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sqltypes"
)

// The access-path planner.
//
// planAccess inspects the WHERE conjuncts (and, for single-table
// queries, the ORDER BY) of a bound SELECT and picks how the executor
// reaches the first FROM table's rows. Indexes may be declared over one
// column or a tuple (composite); matching is leading-prefix based:
//
//	full-tuple equality on a hash index      → O(1) point lookup
//	full-tuple equality on an ordered index  → O(log n) point lookup
//	equality on a leading prefix, plus an
//	optional range / IS [NOT] NULL predicate
//	on the next column                       → ordered prefix/range scan
//	ORDER BY a leading prefix of an ordered
//	index (after any equality columns)       → in-order scan (no sort)
//	otherwise                                → heap scan
//
// The chosen path is stored inside the cached selectPlan, so prepared
// statements re-run it without re-analysis; the schema epoch invalidates
// plans when indexes are created or dropped. Every path over-approximates
// — the executor always re-applies the residual WHERE to candidate rows
// — so the planner only needs monotone key bounds, never exact ones.
// Probe values are aligned with the indexed column's type at execution
// time (parameters are unknown at plan time); when alignment fails the
// executor transparently falls back to a heap scan with identical
// semantics.
//
// The planner additionally records whether the path consumes the WHERE
// clause exactly (residualFree): every conjunct claimed by exactly one
// used predicate slot. Residual-free paths are what allow the index-only
// aggregate executor (COUNT/MIN/MAX answered from index keys without
// materialising table rows — see aggplan.go), after a per-execution
// probe-exactness check.

// accessPathKind enumerates the executor strategies.
type accessPathKind uint8

const (
	pathHashEq       accessPathKind = iota // hash index point lookup (full tuple)
	pathOrderedEq                          // ordered index point lookup (full tuple)
	pathOrderedRange                       // ordered prefix + range scan
	pathOrderedNull                        // prefix + IS NULL / IS NOT NULL via ordered index
	pathOrderedScan                        // full in-order scan (ORDER BY only)
)

// accessPath is the planner's decision for one table. All expression
// fields are row-independent (literals, parameters, constant function
// calls) and are evaluated once per execution.
type accessPath struct {
	kind   accessPathKind
	table  string   // table name (diagnostics)
	idx    string   // index name (key into tableData.indexes)
	cols   []string // index columns, upper-cased, index order
	colPos []int    // schema positions, parallel to cols

	nEq int    // leading columns constrained by equality
	eqs []Expr // equality probes, len nEq

	lo, hi         Expr // range bounds on cols[nEq]; nil = open end
	loIncl, hiIncl bool // bound strictness as written (exact-mode scans)
	notNull        bool // pathOrderedNull: true = IS NOT NULL

	desc             bool // scan direction (ordered paths)
	satisfiesOrderBy bool // rows arrive in ORDER BY order; skip the sort

	// residualFree records that the WHERE clause is entirely and exactly
	// consumed by this path's predicate slots. The normal executor still
	// re-applies the residual WHERE (encoded keys can over-approximate);
	// only the index-only aggregate executor relies on residualFree, and
	// it additionally verifies probe exactness per execution.
	residualFree bool
}

// String renders the path for EXPLAIN-style introspection and tests.
// Single-column paths keep the PR-2 format ("range(T.N)"); composite
// paths join the used columns with '+' ("eq(T.A+B)").
func (p *accessPath) String() string {
	if p == nil {
		return "full-scan"
	}
	used := p.cols[:p.nEq]
	switch p.kind {
	case pathOrderedRange:
		if p.lo != nil || p.hi != nil {
			used = p.cols[:p.nEq+1]
		}
	case pathOrderedNull:
		used = p.cols[:p.nEq+1]
	case pathOrderedScan:
		used = p.cols
	}
	target := p.table + "." + strings.Join(used, "+")
	suffix := ""
	if p.satisfiesOrderBy {
		suffix = " order"
		if p.desc {
			suffix = " order-desc"
		}
	}
	switch p.kind {
	case pathHashEq:
		return "hash-eq(" + target + ")" + suffix
	case pathOrderedEq:
		return "eq(" + target + ")" + suffix
	case pathOrderedRange:
		if p.lo == nil && p.hi == nil {
			return "prefix(" + target + ")" + suffix
		}
		return "range(" + target + ")" + suffix
	case pathOrderedNull:
		if p.notNull {
			return "not-null(" + target + ")" + suffix
		}
		return "null(" + target + ")" + suffix
	case pathOrderedScan:
		return "ordered-scan(" + target + ")" + suffix
	}
	return "full-scan"
}

// colPred accumulates the indexable predicates on one column, plus how
// many conjuncts claimed each slot (first claim keeps the expression;
// extra claims make the column residual-bearing).
type colPred struct {
	eq  Expr
	eqN int

	lo     Expr
	loIncl bool
	loN    int

	hi     Expr
	hiIncl bool
	hiN    int

	isNull    bool
	isNotNull bool
	nullN     int

	// betweenPair marks lo+hi as claimed together by one BETWEEN
	// conjunct (they count as one conjunct in the residual-free sum).
	betweenPair bool
}

// predSet is the WHERE analysis: per-column predicates plus conjunct
// accounting for the residual-free decision.
type predSet struct {
	byCol     map[string]*colPred
	conjuncts int // top-level AND conjuncts in WHERE
	unclaimed int // conjuncts no colPred slot absorbed
}

// planAccess picks the access path for the first FROM table of a bound
// SELECT (or for a DML statement's target table). orderBy/orderBound
// are consulted only when single is true — ORDER BY satisfaction makes
// no sense once rows are joined or grouped.
func planAccess(td *tableData, alias string, where Expr, orderBy []OrderItem, orderBound []bool, aggregated, single bool) *accessPath {
	preds := collectColPreds(where, alias, td.schema)

	// Score the candidates per index, preferring the path that consumes
	// the most leading equality columns, then the cheapest shape: hash
	// equality, ordered equality, bounded range, half range, null test,
	// bare prefix. Indexes are visited in name order so the choice is
	// deterministic.
	var best *accessPath
	bestScore := 0
	for _, name := range td.indexNames() {
		idx := td.indexes[name]
		cols := idx.columns()
		_, ordered := idx.(rangeIndex)

		nEq := 0
		var eqs []Expr
		for nEq < len(cols) {
			p := preds.byCol[cols[nEq]]
			if p == nil || p.eq == nil {
				break
			}
			eqs = append(eqs, p.eq)
			nEq++
		}

		var cand *accessPath
		score := 0
		switch {
		case !ordered:
			// A hash index keys on the full tuple: usable only when
			// every column has an equality probe.
			if nEq == len(cols) {
				cand = &accessPath{kind: pathHashEq, nEq: nEq, eqs: eqs}
				score = nEq*10 + 5
			}
		case nEq == len(cols):
			cand = &accessPath{kind: pathOrderedEq, nEq: nEq, eqs: eqs}
			score = nEq*10 + 4
		default:
			p := preds.byCol[cols[nEq]]
			switch {
			case p != nil && p.lo != nil && p.hi != nil:
				cand = &accessPath{kind: pathOrderedRange, nEq: nEq, eqs: eqs,
					lo: p.lo, hi: p.hi, loIncl: p.loIncl, hiIncl: p.hiIncl}
				score = nEq*10 + 3
			case p != nil && (p.lo != nil || p.hi != nil):
				cand = &accessPath{kind: pathOrderedRange, nEq: nEq, eqs: eqs,
					lo: p.lo, hi: p.hi, loIncl: p.loIncl, hiIncl: p.hiIncl}
				score = nEq*10 + 2
			case p != nil && (p.isNull || p.isNotNull):
				cand = &accessPath{kind: pathOrderedNull, nEq: nEq, eqs: eqs, notNull: p.isNotNull}
				score = nEq*10 + 1
			case nEq > 0:
				// Bare prefix: equality on the leading columns only.
				cand = &accessPath{kind: pathOrderedRange, nEq: nEq, eqs: eqs}
				score = nEq * 10
			}
		}
		if cand != nil && score > bestScore {
			cand.table = td.schema.Name
			cand.idx = name
			cand.cols = cols
			cand.colPos = make([]int, len(cols))
			for i, c := range cols {
				cand.colPos[i] = td.schema.ColIndex(c)
			}
			cand.residualFree = preds.residualFree(cand)
			best = cand
			bestScore = score
		}
	}

	// ORDER BY satisfaction: the ordered paths emit rows sorted by the
	// index columns after the equality prefix (the prefix is constant),
	// so an ORDER BY whose keys — skipping equality-constant columns —
	// walk the index columns in order, all in one direction, needs no
	// sort. With no predicate path at all, a full in-order scan of an
	// ordered index whose leading columns match the ORDER BY replaces
	// scan+sort.
	if single && !aggregated && len(orderBy) > 0 {
		if ocols, odesc, ok := orderByColumns(orderBy, orderBound, alias, td.schema); ok {
			switch {
			case best != nil:
				if pathSatisfiesOrder(best, ocols) {
					if best.kind == pathHashEq || best.kind == pathOrderedEq {
						// Every candidate shares the ORDER BY columns'
						// values, so any emission order is sorted.
						best.satisfiesOrderBy = true
					} else {
						best.desc = odesc
						best.satisfiesOrderBy = true
					}
				}
			case best == nil:
				for _, name := range td.indexNames() {
					idx := td.indexes[name]
					if _, ordered := idx.(rangeIndex); !ordered {
						continue
					}
					cols := idx.columns()
					if !isPrefix(ocols, cols) {
						continue
					}
					best = &accessPath{
						kind:             pathOrderedScan,
						table:            td.schema.Name,
						idx:              name,
						cols:             cols,
						desc:             odesc,
						satisfiesOrderBy: true,
						residualFree:     where == nil,
					}
					best.colPos = make([]int, len(cols))
					for i, c := range cols {
						best.colPos[i] = td.schema.ColIndex(c)
					}
					break
				}
			}
		}
	}
	return best
}

// planGroupAgg decides how an aggregated, grouped, single-table SELECT
// reaches its groups. Two plan-time outcomes:
//
//   - GROUP BY pushdown: with no predicate-driven access path, an
//     ordered index whose leading columns are exactly the GROUP BY
//     columns replaces the heap scan, so rows arrive clustered by
//     group and the executor folds one group at a time (O(groups)
//     state, no hash table).
//   - group-order satisfaction: whatever path the WHERE clause chose is
//     checked for group clustering (pathClustersGroups), reusing the
//     ORDER BY machinery's constant-equality-prefix skipping.
//
// When neither applies the executor falls back to hash aggregation,
// which accepts any row order. Runs once per plan build under the
// schema epoch like the rest of the plan.
func planGroupAgg(plan *selectPlan) {
	s := plan.stmt
	if plan.noFrom || len(plan.tables) != 1 || !plan.aggregated ||
		len(s.GroupBy) == 0 || plan.aggItems != nil {
		return
	}
	// Group columns must be plain references to the table's columns;
	// computed group keys (GROUP BY A+1) cannot be read off an index.
	cols := make([]string, 0, len(s.GroupBy))
	for _, g := range s.GroupBy {
		cr, ok := g.(*ColRef)
		if !ok || cr.Index < 0 {
			return
		}
		cols = append(cols, plan.env.cols[cr.Index].col)
	}
	plan.groupCols = cols
	if plan.path == nil {
		// Prefer an index that also carries the aggregate argument
		// columns: it clusters the groups AND lets the whole fold run
		// off the keys (planGroupIndexFold), never touching the heap.
		var wantPos []int
		for i := range plan.aggCalls {
			if cr, ok := plan.aggCalls[i].arg.(*ColRef); ok && cr.Index >= 0 {
				wantPos = append(wantPos, cr.Index)
			}
		}
		plan.path = groupOrderedScan(plan.tables[0].data, cols, s.Where == nil, wantPos)
	}
	plan.streamGroups = pathClustersGroups(plan.path, cols)
}

// distinctCols returns cols without duplicates, first-occurrence order.
func distinctCols(cols []string) []string {
	out := make([]string, 0, len(cols))
	for _, c := range cols {
		dup := false
		for _, d := range out {
			if d == c {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// pathNonEqGroupCols counts the distinct group columns falling outside
// the path's equality prefix — the columns the scan order must walk to
// delimit a group. The streaming qualification (pathClustersGroups) and
// the index-only grouped fold's prefix length (planGroupIndexFold) both
// derive from this one definition, so group boundaries cannot drift
// between the two.
func pathNonEqGroupCols(p *accessPath, gcols []string) int {
	inEq := func(c string) bool {
		for _, e := range p.cols[:p.nEq] {
			if e == c {
				return true
			}
		}
		return false
	}
	n := 0
	for _, g := range distinctCols(gcols) {
		if !inEq(g) {
			n++
		}
	}
	return n
}

// pathClustersGroups reports whether the path emits rows clustered by
// the group columns: every group column is either inside the equality
// prefix (constant over all candidates) or part of a leading run of the
// scan-order columns made up entirely of group columns. Clustering is
// with respect to the canonical key encoding — exactly the equivalence
// the hash folder groups by — so streaming and hashing always agree.
func pathClustersGroups(p *accessPath, gcols []string) bool {
	if p == nil {
		return false
	}
	inG := func(c string) bool {
		for _, g := range gcols {
			if g == c {
				return true
			}
		}
		return false
	}
	remaining := pathNonEqGroupCols(p, gcols)
	if remaining == 0 {
		// Every group column is equality-constant: all candidates share
		// one group key, whatever order they arrive in.
		return true
	}
	if p.kind == pathHashEq || p.kind == pathOrderedEq {
		// Full-tuple lookups emit one key's rows; a group column outside
		// the tuple is unconstrained across them.
		return false
	}
	seen := make(map[string]bool, remaining)
	for j := p.nEq; remaining > 0; j++ {
		if j >= len(p.cols) {
			return false
		}
		c := p.cols[j]
		if !inG(c) {
			return false
		}
		if !seen[c] {
			seen[c] = true
			remaining--
		}
	}
	return true
}

// groupOrderedScan finds an ordered index whose leading columns are
// exactly the (distinct) GROUP BY columns and returns a full in-order
// scan of it, so groups arrive clustered. Among qualifying indexes the
// one covering the most aggregate-argument columns (wantPos, schema
// positions) wins — covering every argument lets the fold run off the
// index keys alone — with index name order breaking ties. residualFree
// is the WHERE-less ordered-scan convention; the index-only grouped
// fold relies on it.
func groupOrderedScan(td *tableData, gcols []string, residualFree bool, wantPos []int) *accessPath {
	distinct := distinctCols(gcols)
	inG := func(c string) bool {
		for _, g := range distinct {
			if g == c {
				return true
			}
		}
		return false
	}
	var best *accessPath
	bestScore := -1
	for _, name := range td.indexNames() {
		idx := td.indexes[name]
		if _, ordered := idx.(rangeIndex); !ordered {
			continue
		}
		cols := idx.columns()
		if len(cols) < len(distinct) {
			continue
		}
		covered := true
		for _, c := range cols[:len(distinct)] {
			if !inG(c) {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		p := &accessPath{
			kind:         pathOrderedScan,
			table:        td.schema.Name,
			idx:          name,
			cols:         cols,
			residualFree: residualFree,
		}
		p.colPos = make([]int, len(cols))
		for i, c := range cols {
			p.colPos[i] = td.schema.ColIndex(c)
		}
		score := 0
		for _, w := range wantPos {
			for _, cp := range p.colPos {
				if cp == w {
					score++
					break
				}
			}
		}
		if score > bestScore {
			best = p
			bestScore = score
		}
	}
	return best
}

// pathSatisfiesOrder reports whether the path's emission order sorts by
// ocols: columns inside the equality prefix are constant and skippable,
// the rest must walk the index columns in order starting at the scan
// column.
func pathSatisfiesOrder(p *accessPath, ocols []string) bool {
	inEq := func(c string) bool {
		for _, e := range p.cols[:p.nEq] {
			if e == c {
				return true
			}
		}
		return false
	}
	if p.kind == pathHashEq || p.kind == pathOrderedEq {
		for _, oc := range ocols {
			if !inEq(oc) {
				return false
			}
		}
		return true
	}
	j := p.nEq
	for _, oc := range ocols {
		if inEq(oc) {
			continue
		}
		if j < len(p.cols) && p.cols[j] == oc {
			j++
			continue
		}
		return false
	}
	return true
}

// isPrefix reports whether want is a leading prefix of cols.
func isPrefix(want, cols []string) bool {
	if len(want) > len(cols) {
		return false
	}
	for i, w := range want {
		if cols[i] != w {
			return false
		}
	}
	return true
}

// orderByColumns recognises an ORDER BY list made of plain references to
// this table's columns, all sorting in one direction.
func orderByColumns(orderBy []OrderItem, orderBound []bool, alias string, schema *TableSchema) ([]string, bool, bool) {
	if len(orderBound) != len(orderBy) {
		return nil, false, false
	}
	cols := make([]string, len(orderBy))
	desc := orderBy[0].Desc
	for i, o := range orderBy {
		if !orderBound[i] || o.Desc != desc {
			return nil, false, false
		}
		col, ok := orderByColumn(o.Expr, alias, schema)
		if !ok {
			return nil, false, false
		}
		cols[i] = col
	}
	return cols, desc, true
}

// orderByColumn recognises an ORDER BY key that is a plain reference to
// one of this table's columns.
func orderByColumn(e Expr, alias string, schema *TableSchema) (string, bool) {
	cr, ok := e.(*ColRef)
	if !ok {
		return "", false
	}
	if cr.Table != "" && !strings.EqualFold(cr.Table, alias) {
		return "", false
	}
	col := strings.ToUpper(cr.Col)
	if schema.ColIndex(col) < 0 {
		return "", false
	}
	return col, true
}

// residualFree reports whether the path consumes the entire WHERE
// clause exactly: no unclaimed conjuncts, every claimed predicate slot
// used by the path, and no slot claimed more than once (first-claim-wins
// keeps only one expression, so a second claim needs the residual).
func (ps *predSet) residualFree(p *accessPath) bool {
	if ps.unclaimed > 0 {
		return false
	}
	used := 0
	for col, cp := range ps.byCol {
		claims := cp.eqN + cp.loN + cp.hiN + cp.nullN
		if claims == 0 {
			continue
		}
		slot := -1 // index-column position of col in the path, if any
		for i, pc := range p.cols {
			if pc == col {
				slot = i
				break
			}
		}
		switch {
		case slot >= 0 && slot < p.nEq:
			// Equality column: only its eq slot is consumed.
			if cp.eqN != 1 || cp.loN+cp.hiN+cp.nullN != 0 {
				return false
			}
		case slot == p.nEq && p.kind == pathOrderedRange:
			if cp.eqN != 0 || cp.nullN != 0 {
				return false
			}
			if (cp.loN > 0) != (p.lo != nil) || (cp.hiN > 0) != (p.hi != nil) {
				return false
			}
			if cp.loN > 1 || cp.hiN > 1 {
				return false
			}
		case slot == p.nEq && p.kind == pathOrderedNull:
			if cp.eqN+cp.loN+cp.hiN != 0 || cp.nullN != 1 {
				return false
			}
		default:
			return false // predicate on a column the path does not serve
		}
		used += cp.eqN + cp.loN + cp.hiN + cp.nullN
	}
	// A BETWEEN conjunct claims both range slots; count it once.
	if p.kind == pathOrderedRange && p.nEq < len(p.cols) {
		if cp := ps.byCol[p.cols[p.nEq]]; cp != nil && cp.betweenPair {
			used--
		}
	}
	return used == ps.conjuncts
}

// collectColPreds walks the top-level AND tree gathering indexable
// predicates per column of the target table, counting conjuncts for the
// residual-free decision.
func collectColPreds(where Expr, alias string, schema *TableSchema) *predSet {
	ps := &predSet{byCol: make(map[string]*colPred)}
	at := func(col string) *colPred {
		p, ok := ps.byCol[col]
		if !ok {
			p = &colPred{}
			ps.byCol[col] = p
		}
		return p
	}
	colOf := func(e Expr) (string, bool) {
		cr, ok := e.(*ColRef)
		if !ok {
			return "", false
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, alias) {
			return "", false
		}
		col := strings.ToUpper(cr.Col)
		if schema.ColIndex(col) < 0 {
			return "", false
		}
		return col, true
	}
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case *Binary:
			if n.Op == "AND" {
				walk(n.L)
				walk(n.R)
				return
			}
			ps.conjuncts++
			col, l2r := colOf(n.L)
			val := n.R
			op := n.Op
			if !l2r {
				var ok bool
				col, ok = colOf(n.R)
				if !ok {
					ps.unclaimed++
					return
				}
				val = n.L
				// Flip the comparison for "const op col".
				switch op {
				case "<":
					op = ">"
				case "<=":
					op = ">="
				case ">":
					op = "<"
				case ">=":
					op = "<="
				}
			}
			if !isRowIndependent(val) {
				ps.unclaimed++
				return
			}
			p := at(col)
			switch op {
			case "=":
				if p.eq == nil {
					p.eq = val
				}
				p.eqN++
			case ">", ">=":
				if p.lo == nil {
					p.lo = val
					p.loIncl = op == ">="
				}
				p.loN++
			case "<", "<=":
				if p.hi == nil {
					p.hi = val
					p.hiIncl = op == "<="
				}
				p.hiN++
			default:
				ps.unclaimed++
			}
		case *BetweenExpr:
			ps.conjuncts++
			if n.Not {
				ps.unclaimed++
				return
			}
			col, ok := colOf(n.X)
			if !ok || !isRowIndependent(n.Lo) || !isRowIndependent(n.Hi) {
				ps.unclaimed++
				return
			}
			p := at(col)
			if p.lo == nil && p.hi == nil {
				p.betweenPair = true
			}
			if p.lo == nil {
				p.lo = n.Lo
				p.loIncl = true
			}
			if p.hi == nil {
				p.hi = n.Hi
				p.hiIncl = true
			}
			p.loN++
			p.hiN++
		case *IsNullExpr:
			ps.conjuncts++
			if col, ok := colOf(n.X); ok {
				p := at(col)
				if n.Not {
					p.isNotNull = true
				} else {
					p.isNull = true
				}
				p.nullN++
			} else {
				ps.unclaimed++
			}
		default:
			ps.conjuncts++
			ps.unclaimed++
		}
	}
	if where != nil {
		walk(where)
	}
	return ps
}

// isRowIndependent reports whether e can be evaluated without a row:
// no column references, no aggregates. Such expressions (literals,
// parameters, DLVALUE(?), NOW()) are usable as index probes.
func isRowIndependent(e Expr) bool {
	ok := true
	walkExpr(e, func(x Expr) bool {
		switch n := x.(type) {
		case *ColRef:
			ok = false
			return false
		case *FuncCall:
			if isAggregate(n.Name) {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// evalProbe evaluates a row-independent probe expression.
func evalProbe(e Expr, ctx *evalCtx) (sqltypes.Value, error) {
	saved := ctx.vals
	ctx.vals = nil
	v, err := evalExpr(e, ctx)
	ctx.vals = saved
	return v, err
}

// keyRangeHiSentinel is appended to a prefix to form the upper bound of
// "every key extending this prefix": every canonical encoding starts
// with a class tag in 0x01..0x07, so prefix+0xFF is greater than every
// continuation of prefix and smaller than every key diverging above it.
const keyRangeHiSentinel = "\xff"

// eqPrefix evaluates and aligns the path's equality probes into a
// concatenated key prefix. nullProbe means a probe was NULL (the path
// matches no rows); ok=false means a probe failed to evaluate or align
// — or, with requireExact, maps to a shareable key (exactProbe) — and
// the caller must fall back to the ordinary heap-scan semantics.
func eqPrefix(td *tableData, path *accessPath, ctx *evalCtx, requireExact bool) (prefix []byte, nullProbe, ok bool) {
	for i := 0; i < path.nEq; i++ {
		v, err := evalProbe(path.eqs[i], ctx)
		if err != nil {
			return nil, false, false
		}
		if v.IsNull() {
			return nil, true, true // col = NULL is UNKNOWN: no rows
		}
		pv, okp := probeValue(td.schema.Cols[path.colPos[i]].Type.Kind, v)
		if !okp || (requireExact && !exactProbe(pv)) {
			return nil, false, false
		}
		prefix = appendKey(prefix, pv)
	}
	return prefix, false, true
}

// encodePathBound evaluates and aligns one range bound on the path's
// scan column (cols[nEq]) and appends its encoding to a copy of
// prefix. null means the bound evaluated to NULL (the range matches
// nothing); ok=false forces the heap-scan fallback (evaluation or
// alignment failure, or — with requireExact — a shareable key).
func encodePathBound(td *tableData, path *accessPath, prefix []byte, e Expr, ctx *evalCtx, requireExact bool) (key string, null, ok bool) {
	v, err := evalProbe(e, ctx)
	if err != nil {
		return "", false, false
	}
	if v.IsNull() {
		return "", true, true
	}
	rangeKind := td.schema.Cols[path.colPos[path.nEq]].Type.Kind
	pv, okp := probeValue(rangeKind, v)
	if !okp || (requireExact && !exactProbe(pv)) {
		return "", false, false
	}
	return string(appendKey(append([]byte(nil), prefix...), pv)), false, true
}

// prefixUpper bounds a scan to keys extending prefix; nil when the
// prefix is empty (single-column ranges scan to the index end).
func prefixUpper(prefix []byte) *keyBound {
	if len(prefix) == 0 {
		return nil
	}
	return &keyBound{key: string(prefix) + keyRangeHiSentinel, incl: true}
}

// scanAccessPath drives the chosen path against current table state,
// emitting candidate rows (in key order for ordered paths). It returns
// handled=false when the path cannot serve this execution — a probe
// value does not align with the indexed column's type, or evaluating a
// probe failed — and the caller must fall back to a heap scan, which
// preserves exact comparison semantics. Candidates over-approximate the
// WHERE clause: callers always re-apply the residual predicate.
//
// Value-typed range bounds are scanned inclusively even for strict
// comparisons: distinct values can share an encoded key (float64 image
// of huge integers), so exclusion happens in the residual predicate
// where it is exact. The NULL boundary key is exact and is excluded
// directly for IS NOT NULL.
func scanAccessPath(td *tableData, path *accessPath, ctx *evalCtx, emit func(id rowID, vals []sqltypes.Value) bool) (bool, error) {
	idx := td.indexes[path.idx]
	if idx == nil {
		return false, nil
	}

	reads := int64(0)
	defer func() { td.heapReads.Add(reads) }()
	emitIDs := func(ids []rowID) bool {
		for _, id := range ids {
			vals, live := td.fetch(id, ctx.snap)
			if !live {
				continue
			}
			reads++
			if !emit(id, vals) {
				return false
			}
		}
		return true
	}

	prefix, nullProbe, ok := eqPrefix(td, path, ctx, false)
	if !ok {
		return false, nil
	}
	if nullProbe {
		return true, nil
	}

	// Absent bounds report ok with an empty key; evaluation errors
	// force the scan fallback, where the residual predicate surfaces
	// them with full-scan semantics.
	encodeBound := func(e Expr) (key string, null, ok bool) {
		if e == nil {
			return "", false, true
		}
		return encodePathBound(td, path, prefix, e, ctx, false)
	}

	switch path.kind {
	case pathHashEq, pathOrderedEq:
		emitIDs(lookupVisible(td, idx, string(prefix), ctx.snap))
		return true, nil

	case pathOrderedRange:
		rix, ok := idx.(rangeIndex)
		if !ok {
			return false, nil
		}
		loKey, loNull, loOK := encodeBound(path.lo)
		hiKey, hiNull, hiOK := encodeBound(path.hi)
		if !loOK || !hiOK {
			return false, nil
		}
		if loNull || hiNull {
			return true, nil // comparison with NULL matches nothing
		}
		var lo, hi *keyBound
		switch {
		case path.lo != nil:
			lo = &keyBound{key: loKey, incl: true}
		case path.hi != nil:
			// Half range open below still excludes NULLs in the scan
			// column: col < x is UNKNOWN for NULL, and the residual
			// filter would drop them anyway. The sentinel also skips
			// composite continuations of the NULL key.
			lo = &keyBound{key: string(prefix) + nullKey + keyRangeHiSentinel, incl: false}
		default:
			// Bare prefix: everything extending the equality columns,
			// NULLs in trailing columns included.
			lo = &keyBound{key: string(prefix), incl: true}
		}
		if path.hi != nil {
			hi = &keyBound{key: hiKey + keyRangeHiSentinel, incl: true}
		} else {
			hi = prefixUpper(prefix)
		}
		scanVisibleRange(td, rix, lo, hi, path.desc, ctx.snap, func(_ string, ids []rowID) bool {
			return emitIDs(ids)
		})
		return true, nil

	case pathOrderedNull:
		rix, ok := idx.(rangeIndex)
		if !ok {
			return false, nil
		}
		if path.notNull {
			lo := &keyBound{key: string(prefix) + nullKey + keyRangeHiSentinel, incl: false}
			scanVisibleRange(td, rix, lo, prefixUpper(prefix), path.desc, ctx.snap, func(_ string, ids []rowID) bool {
				return emitIDs(ids)
			})
		} else {
			// All NULLs in the scan column share the prefix+NULL key;
			// trailing index columns extend it, so scan the NULL-key
			// continuation range (degenerates to the exact key when the
			// index ends at the scan column).
			lo := &keyBound{key: string(prefix) + nullKey, incl: true}
			hi := &keyBound{key: string(prefix) + nullKey + keyRangeHiSentinel, incl: true}
			scanVisibleRange(td, rix, lo, hi, path.desc, ctx.snap, func(_ string, ids []rowID) bool {
				return emitIDs(ids)
			})
		}
		return true, nil

	case pathOrderedScan:
		rix, ok := idx.(rangeIndex)
		if !ok {
			return false, nil
		}
		scanVisibleRange(td, rix, nil, nil, path.desc, ctx.snap, func(_ string, ids []rowID) bool {
			return emitIDs(ids)
		})
		return true, nil
	}
	return false, fmt.Errorf("sqldb: unknown access path kind %d", path.kind)
}

// exactProbe reports whether the aligned probe value pv maps to an
// index key that exactly one comparison class of stored values shares:
// equality and range bounds on such keys are exact, never
// over-approximations. The only inexact case is the numeric class
// beyond ±2^53, where distinct integers share a float64 image.
func exactProbe(pv sqltypes.Value) bool {
	if !pv.IsNumeric() {
		return true
	}
	f, _ := pv.AsDouble()
	return math.IsNaN(f) || math.Abs(f) < 1<<53
}
