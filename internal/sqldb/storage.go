package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sqltypes"
)

// rowID identifies a stored row for the lifetime of the database,
// including across WAL replay (IDs are allocated deterministically).
type rowID uint64

// ---------- MVCC stamps ----------
//
// Every row version and index entry carries a begin and an end stamp:
//
//	begin — the commit stamp of the transaction that created it,
//	        uncommittedStamp while that transaction is in flight, or
//	        abortedStamp if it rolled back;
//	end   — 0 while current, uncommittedStamp while a deleting/updating
//	        transaction is in flight, or the commit stamp that superseded
//	        it.
//
// Commit stamps are boot-local: they are allocated monotonically under
// DB.commitMu in WAL-stage order, so replay reconstructs the same
// visibility order, and a freshly loaded snapshot collapses to stamp
// baseStamp (visible to every reader).
const (
	txMark           = uint64(1) << 63 // set on all in-flight / aborted stamps
	uncommittedStamp = txMark
	abortedStamp     = txMark | 1
	baseStamp        = uint64(1) // stamp of snapshot-loaded rows

	// snapLatest is the visibility mode used by DML row matching and FK
	// checks: see the latest non-aborted state, including this
	// transaction's own uncommitted changes. Safe because same-table
	// writers serialise on tableData.wmu (or on DB.mu for the global
	// paths), so any in-flight stamp seen in this mode is our own.
	snapLatest = ^uint64(0)
)

// visibleStamp reports whether a version/entry with the given begin and
// end stamps is visible at snapshot snap.
func visibleStamp(b, e, snap uint64) bool {
	if snap == snapLatest {
		return b != abortedStamp && e == 0
	}
	if b&txMark != 0 || b > snap {
		return false // in flight, aborted, or committed after the snapshot
	}
	return e == 0 || e&txMark != 0 || e > snap
}

// rowVersion is one version of a heap row. vals is immutable after the
// version is published; visibility is controlled entirely by the stamps.
type rowVersion struct {
	vals  []sqltypes.Value
	prev  *rowVersion // next-older version
	begin atomic.Uint64
	end   atomic.Uint64
}

func (v *rowVersion) visibleAt(snap uint64) bool {
	return visibleStamp(v.begin.Load(), v.end.Load(), snap)
}

// rowSlot anchors the version chain of one row id. Slots keep their
// insertion-order position in tableData.slots for the life of the row,
// so scan order is stable across updates (a new version replaces the
// chain head in place).
type rowSlot struct {
	id   rowID
	head atomic.Pointer[rowVersion] // newest first
}

// versionAt walks the chain newest→oldest and returns the version
// visible at snap, if any. At most one version per row is visible at a
// given snapshot (versions have disjoint [begin, end) ranges).
func (s *rowSlot) versionAt(snap uint64) *rowVersion {
	for v := s.head.Load(); v != nil; v = v.prev {
		if v.visibleAt(snap) {
			return v
		}
	}
	return nil
}

// mvccRefs is a transaction's record of everything it stamped, kept on
// txState until the commit is durable. Commit resolves the in-flight
// stamps to the allocated commit stamp; abort (rollback, or unwinding an
// unflushed suffix after an fsync failure) flips them back in O(touched)
// without structural surgery — vacuum reclaims the husks later.
type mvccRefs struct {
	created    []*rowVersion
	ended      []*rowVersion
	createdIdx []*idxEntry
	endedIdx   []*idxEntry
	// undo reverses the structural side effects that are not
	// stamp-guarded: unique-constraint map entries and live counters.
	// Run in reverse order on abort.
	undo []func()
	// delta is the per-table net live-row change, applied to the
	// committed live-count history at commit time.
	delta map[*tableData]int64
	// touched lists every table this transaction wrote (including
	// updates, which leave delta untouched). Commit publishes the commit
	// stamp to each table's lastWrite — the result cache's serve-time
	// staleness check — and the commit hook drops cached entries over
	// them. Tiny (statements touch a handful of tables), so a linear
	// dedupe beats a map.
	touched []*tableData
	// stamp is the commit stamp once allocated (0 until then); the
	// unwind path uses it to pop live-history marks.
	stamp uint64
}

// touch records td in the transaction's written-tables set.
func (r *mvccRefs) touch(td *tableData) {
	for _, t := range r.touched {
		if t == td {
			return
		}
	}
	r.touched = append(r.touched, td)
}

func (r *mvccRefs) addDelta(td *tableData, d int64) {
	if r.delta == nil {
		r.delta = make(map[*tableData]int64, 2)
	}
	r.delta[td] += d
}

func (r *mvccRefs) empty() bool {
	return len(r.created) == 0 && len(r.ended) == 0 &&
		len(r.createdIdx) == 0 && len(r.endedIdx) == 0 && len(r.undo) == 0
}

// commit resolves every in-flight stamp to ts and records the live-count
// marks. Must run under DB.commitMu so stamp order equals WAL order.
func (r *mvccRefs) commit(ts uint64) {
	r.stamp = ts
	for _, v := range r.created {
		v.begin.Store(ts)
	}
	for _, v := range r.ended {
		v.end.Store(ts)
	}
	for _, e := range r.createdIdx {
		e.begin.Store(ts)
	}
	for _, e := range r.endedIdx {
		e.end.Store(ts)
	}
	for td, d := range r.delta {
		td.pushLiveMark(ts, d)
	}
	// Publish the write stamp per table BEFORE lastTS advances (both
	// happen under commitMu): any reader whose snapshot can see this
	// transaction observes lastWrite >= its stamps, which is what lets
	// the result cache reject entries built before this write.
	for _, td := range r.touched {
		td.lastWrite.Store(ts)
	}
}

// abort flips this transaction's stamps to the rolled-back state and
// reverses its structural side effects. Safe both before commit
// (rollback: stamps are still in-flight) and after (unwinding an
// unflushed commit suffix: the DB is poisoned and the stamps are simply
// overwritten; LIFO order across transactions keeps nested effects
// consistent).
func (r *mvccRefs) abort() {
	for _, v := range r.created {
		v.begin.Store(abortedStamp)
	}
	for _, v := range r.ended {
		v.end.Store(0)
	}
	for _, e := range r.createdIdx {
		e.begin.Store(abortedStamp)
	}
	for _, e := range r.endedIdx {
		e.end.Store(0)
	}
	for i := len(r.undo) - 1; i >= 0; i-- {
		r.undo[i]()
	}
	if r.stamp != 0 {
		for td, d := range r.delta {
			td.popLiveMark(r.stamp, d)
		}
	}
}

// liveMark is one point of a table's committed live-row-count history:
// after the commit at stamp ts the table held live visible rows. The
// history lets index-only COUNT(*) answer exactly for any open snapshot
// while writers keep committing; vacuum prunes it back to one mark.
type liveMark struct {
	ts   uint64
	live int64
}

// tableData is the heap + indexes for one table.
type tableData struct {
	schema *TableSchema

	// wmu serialises writer statements on this table: a sharded DML
	// statement holds it from row matching through commit-stamping, so
	// "latest" visibility during matching can never observe another
	// transaction's in-flight stamps. Global-barrier paths (DDL,
	// explicit transactions, FK-involved DML, vacuum) already exclude
	// everything via DB.mu and skip it.
	wmu sync.Mutex

	// latch guards the physical structure readers traverse: the slots
	// slice header, the secondary-index trees/maps and the unique-index
	// maps. Writers hold it exclusively only for short structural
	// mutations; readers hold it in shared mode for bounded batches
	// (see scanVisibleRange) and never nest two table latches, so
	// reader/writer latch cycles cannot form.
	latch sync.RWMutex

	slots []*rowSlot
	byID  sync.Map     // rowID → *rowSlot; lock-free point fetches
	live  atomic.Int64 // latest committed+in-flight live rows (planner heuristics)
	dead  atomic.Int64 // dead versions + index entries awaiting vacuum

	histMu   sync.Mutex
	liveHist []liveMark // committed live counts, ascending ts

	// indexes maps upper-cased index name → secondary index (hash or
	// ordered, single- or multi-column; see index.go). The PK and UNIQUE
	// constraints get implicit composite indexes in uniqueIdx. The map
	// itself only changes under the DDL barrier.
	indexes   map[string]secondaryIndex
	uniqueIdx []*uniqueIndex // parallel to schema constraint list (PK first if present)

	// heapReads counts row materialisations out of the heap (get hits
	// and scan visits). It is the access-path introspection the
	// index-only aggregate tests assert "reads zero table rows" with;
	// atomic because SELECTs run concurrently under the read lock.
	heapReads atomic.Int64

	// lastWrite is the newest commit stamp that wrote this table,
	// published under DB.commitMu before lastTS advances. The result
	// cache serves an entry only when every source table's lastWrite is
	// <= the stamp the entry was built at (resultcache.go).
	lastWrite atomic.Uint64
}

func newTableData(schema *TableSchema) *tableData {
	td := &tableData{
		schema:   schema,
		indexes:  make(map[string]secondaryIndex),
		liveHist: []liveMark{{ts: 0, live: 0}},
	}
	if len(schema.PrimaryKey) > 0 {
		td.uniqueIdx = append(td.uniqueIdx, newUniqueIndex("PRIMARY KEY", schema, schema.PrimaryKey))
	}
	for _, u := range schema.Uniques {
		td.uniqueIdx = append(td.uniqueIdx, newUniqueIndex("UNIQUE", schema, u))
	}
	return td
}

// pushLiveMark records the committed live count after the commit at ts.
func (td *tableData) pushLiveMark(ts uint64, delta int64) {
	td.histMu.Lock()
	last := td.liveHist[len(td.liveHist)-1].live
	td.liveHist = append(td.liveHist, liveMark{ts: ts, live: last + delta})
	td.histMu.Unlock()
}

// popLiveMark retracts the mark pushed at ts (fsync-failure unwind; the
// suffix is popped LIFO so ts is always the newest mark for this table).
func (td *tableData) popLiveMark(ts uint64, delta int64) {
	td.histMu.Lock()
	if n := len(td.liveHist); n > 0 && td.liveHist[n-1].ts == ts {
		td.liveHist = td.liveHist[:n-1]
	} else if n > 0 {
		// Shouldn't happen (unwind is LIFO), but keep the history sane.
		td.liveHist[n-1].live -= delta
	}
	td.histMu.Unlock()
}

// liveAt returns the committed live-row count visible at snap.
func (td *tableData) liveAt(snap uint64) int64 {
	if snap == snapLatest {
		return td.live.Load()
	}
	td.histMu.Lock()
	defer td.histMu.Unlock()
	h := td.liveHist
	i := sort.Search(len(h), func(i int) bool { return h[i].ts > snap })
	if i == 0 {
		return 0
	}
	return h[i-1].live
}

// resetLiveHist collapses the history to a single mark (vacuum: no
// snapshot older than the barrier can still be open).
func (td *tableData) resetLiveHist(ts uint64) {
	td.histMu.Lock()
	td.liveHist = append(td.liveHist[:0], liveMark{ts: ts, live: td.live.Load()})
	td.histMu.Unlock()
}

// insert installs a new row as an uncommitted version and maintains
// indexes. The caller owns the table's writer slot (wmu or the global
// barrier).
func (td *tableData) insert(id rowID, vals []sqltypes.Value, refs *mvccRefs) error {
	for _, ui := range td.uniqueIdx {
		if err := ui.check(vals, 0); err != nil {
			return err
		}
	}
	refs.touch(td)
	v := &rowVersion{vals: vals}
	v.begin.Store(uncommittedStamp)
	s := &rowSlot{id: id}
	s.head.Store(v)
	td.byID.Store(id, s)
	td.latch.Lock()
	td.slots = append(td.slots, s)
	for _, name := range td.indexNames() {
		e := &idxEntry{id: id}
		e.begin.Store(uncommittedStamp)
		td.indexes[name].addRow(vals, e)
		refs.createdIdx = append(refs.createdIdx, e)
	}
	td.latch.Unlock()
	for _, ui := range td.uniqueIdx {
		ui.add(vals, id)
	}
	td.live.Add(1)
	refs.created = append(refs.created, v)
	refs.addDelta(td, 1)
	refs.undo = append(refs.undo, func() {
		for _, ui := range td.uniqueIdx {
			ui.remove(vals, id)
		}
		td.live.Add(-1)
		td.dead.Add(1)
	})
	return nil
}

// delete ends the current version of a row (uncommitted end stamp) and
// its index entries; nothing is removed structurally until vacuum.
func (td *tableData) delete(id rowID, refs *mvccRefs) ([]sqltypes.Value, error) {
	s, ok := td.slotFor(id)
	if !ok {
		return nil, fmt.Errorf("sqldb: row %d not found in %s", id, td.schema.Name)
	}
	v := s.versionAt(snapLatest)
	if v == nil {
		return nil, fmt.Errorf("sqldb: row %d not found in %s", id, td.schema.Name)
	}
	vals := v.vals
	refs.touch(td)
	v.end.Store(uncommittedStamp)
	refs.ended = append(refs.ended, v)
	td.latch.RLock()
	for _, idx := range td.indexes {
		if e := findCurrentEntry(idx, vals, id); e != nil {
			e.end.Store(uncommittedStamp)
			refs.endedIdx = append(refs.endedIdx, e)
		}
	}
	td.latch.RUnlock()
	for _, ui := range td.uniqueIdx {
		ui.remove(vals, id)
	}
	td.live.Add(-1)
	td.dead.Add(1)
	refs.addDelta(td, -1)
	refs.undo = append(refs.undo, func() {
		for _, ui := range td.uniqueIdx {
			ui.add(vals, id)
		}
		td.live.Add(1)
		td.dead.Add(-1)
	})
	return vals, nil
}

// update installs a new version at the head of the row's chain,
// maintaining indexes and checking unique constraints against all rows
// but itself. Index entries are touched only for keys that changed.
func (td *tableData) update(id rowID, newVals []sqltypes.Value, refs *mvccRefs) ([]sqltypes.Value, error) {
	s, ok := td.slotFor(id)
	if !ok {
		return nil, fmt.Errorf("sqldb: row %d not found in %s", id, td.schema.Name)
	}
	v := s.versionAt(snapLatest)
	if v == nil {
		return nil, fmt.Errorf("sqldb: row %d not found in %s", id, td.schema.Name)
	}
	old := v.vals
	for _, ui := range td.uniqueIdx {
		if err := ui.check(newVals, id); err != nil {
			return nil, err
		}
	}
	refs.touch(td)
	nv := &rowVersion{vals: newVals, prev: s.head.Load()}
	nv.begin.Store(uncommittedStamp)
	v.end.Store(uncommittedStamp)
	s.head.Store(nv)
	refs.created = append(refs.created, nv)
	refs.ended = append(refs.ended, v)
	td.dead.Add(1) // the superseded version
	td.latch.Lock()
	for _, name := range td.indexNames() {
		idx := td.indexes[name]
		oldKey := idx.rowKeyOf(old)
		newKey := idx.rowKeyOf(newVals)
		if oldKey == newKey {
			continue // entry stays valid for both versions
		}
		if e := findCurrentEntry(idx, old, id); e != nil {
			e.end.Store(uncommittedStamp)
			refs.endedIdx = append(refs.endedIdx, e)
			td.dead.Add(1)
		}
		ne := &idxEntry{id: id}
		ne.begin.Store(uncommittedStamp)
		idx.addRow(newVals, ne)
		refs.createdIdx = append(refs.createdIdx, ne)
	}
	td.latch.Unlock()
	for _, ui := range td.uniqueIdx {
		ui.remove(old, id)
		ui.add(newVals, id)
	}
	refs.undo = append(refs.undo, func() {
		for _, ui := range td.uniqueIdx {
			ui.remove(newVals, id)
			ui.add(old, id)
		}
		td.dead.Add(1) // the aborted new version
	})
	return old, nil
}

func (td *tableData) slotFor(id rowID) (*rowSlot, bool) {
	v, ok := td.byID.Load(id)
	if !ok {
		return nil, false
	}
	return v.(*rowSlot), true
}

// fetch returns the row values visible at snap without touching the
// read counter. Reader loops (index scans, join probes, boundary
// fetches) use it with one batched heapReads.Add per call site, so the
// hot path avoids a shared atomic RMW per row. Lock-free: the slot map
// and version stamps are safe under concurrent writers.
func (td *tableData) fetch(id rowID, snap uint64) ([]sqltypes.Value, bool) {
	s, ok := td.slotFor(id)
	if !ok {
		return nil, false
	}
	v := s.versionAt(snap)
	if v == nil {
		return nil, false
	}
	return v.vals, true
}

// get returns the row values visible at snap, counting the read. Used
// by the low-frequency point paths (DML row collection under the writer
// lock); reader loops use fetch + a batched count instead.
func (td *tableData) get(id rowID, snap uint64) ([]sqltypes.Value, bool) {
	vals, ok := td.fetch(id, snap)
	if ok {
		td.heapReads.Add(1)
	}
	return vals, ok
}

// scan calls f for each row visible at snap in insertion order; f
// returns false to stop. The latch is held only long enough to copy the
// slots slice header, so long analytical scans never block writers.
func (td *tableData) scan(snap uint64, f func(id rowID, vals []sqltypes.Value) bool) {
	td.latch.RLock()
	slots := td.slots
	td.latch.RUnlock()
	visited := int64(0)
	for _, s := range slots {
		v := s.versionAt(snap)
		if v == nil {
			continue
		}
		visited++
		if !f(s.id, v.vals) {
			break
		}
	}
	td.heapReads.Add(visited)
}

// indexOnColumns returns the secondary index declared over exactly the
// given column tuple, if any.
func (td *tableData) indexOnColumns(cols []string) (secondaryIndex, bool) {
	for _, idx := range td.indexes {
		if sameCols(idx.columns(), cols) {
			return idx, true
		}
	}
	return nil, false
}

// indexNames returns the table's secondary index names, sorted, so the
// planner's candidate walk and writer entry-stamping order are
// deterministic.
func (td *tableData) indexNames() []string {
	names := make([]string, 0, len(td.indexes))
	for name := range td.indexes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// vacuum reclaims every dead row version and dead index entry. Caller
// must hold the global barrier (DB.mu exclusively) with the WAL fenced,
// so no snapshot is live and no commit can be unwound afterwards: a
// version is reclaimable iff it is not the current committed version.
func (td *tableData) vacuum(ts uint64) {
	kept := make([]*rowSlot, 0, len(td.slots))
	for _, s := range td.slots {
		v := s.versionAt(snapLatest)
		if v == nil {
			td.byID.Delete(s.id)
			continue
		}
		v.prev = nil // drop older versions
		s.head.Store(v)
		kept = append(kept, s)
	}
	td.slots = kept
	for _, idx := range td.indexes {
		idx.sweepDead()
	}
	td.dead.Store(0)
	td.resetLiveHist(ts)
}

// ---------- unique (PK / UNIQUE) indexes ----------

// uniqueIndex enforces PRIMARY KEY / UNIQUE over a column tuple with
// latest-state semantics: entries track the current (committed or
// in-flight) holder of each key, eagerly maintained by writers and
// structurally reversed on abort. Only writer paths touch it — the
// planner serves readers from the MVCC-stamped secondary indexes — so
// the owning writer serialisation (wmu / the global barrier) is its
// only required protection.
// SQL semantics: rows containing NULL in any constrained column are
// exempt from uniqueness (except PK columns, which are NOT NULL anyway).
type uniqueIndex struct {
	label   string
	cols    []int
	colName []string
	kinds   []sqltypes.Kind // declared column kinds, for probe coercion
	entries map[string]rowID
}

func newUniqueIndex(label string, schema *TableSchema, cols []string) *uniqueIndex {
	ui := &uniqueIndex{label: label, colName: cols, entries: make(map[string]rowID)}
	for _, c := range cols {
		ci := schema.ColIndex(c)
		ui.cols = append(ui.cols, ci)
		ui.kinds = append(ui.kinds, schema.Cols[ci].Type.Kind)
	}
	return ui
}

func (ui *uniqueIndex) key(vals []sqltypes.Value) (string, bool) {
	tuple := make([]sqltypes.Value, len(ui.cols))
	for i, ci := range ui.cols {
		if vals[ci].IsNull() {
			return "", false
		}
		tuple[i] = vals[ci]
	}
	return encodeKey(tuple...), true
}

func (ui *uniqueIndex) check(vals []sqltypes.Value, self rowID) error {
	k, ok := ui.key(vals)
	if !ok {
		return nil
	}
	if existing, dup := ui.entries[k]; dup && existing != self {
		return fmt.Errorf("sqldb: %s violation on (%s)", ui.label, strings.Join(ui.colName, ", "))
	}
	return nil
}

func (ui *uniqueIndex) add(vals []sqltypes.Value, id rowID) {
	if k, ok := ui.key(vals); ok {
		ui.entries[k] = id
	}
}

func (ui *uniqueIndex) remove(vals []sqltypes.Value, id rowID) {
	if k, ok := ui.key(vals); ok {
		if ui.entries[k] == id {
			delete(ui.entries, k)
		}
	}
}

// lookup returns the row holding the given key tuple, if any. Probe
// values may come from another table's columns (FK checks), so each is
// aligned with this index's column kinds first; usable=false means the
// probe cannot be served here and the caller must fall back to a scan.
func (ui *uniqueIndex) lookup(tuple []sqltypes.Value) (id rowID, found, usable bool) {
	probe := make([]sqltypes.Value, len(tuple))
	for i, v := range tuple {
		if v.IsNull() {
			return 0, false, true // NULL never matches a unique key
		}
		pv, ok := probeValue(ui.kinds[i], v)
		if !ok {
			return 0, false, false
		}
		probe[i] = pv
	}
	id, found = ui.entries[encodeKey(probe...)]
	return id, found, true
}
