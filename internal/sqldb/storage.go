package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/sqltypes"
)

// rowID identifies a stored row for the lifetime of the database,
// including across WAL replay (IDs are allocated deterministically).
type rowID uint64

// storedRow is one heap row. Deleted rows remain as tombstones until
// checkpoint compaction so that rowIDs stay stable for the undo log.
type storedRow struct {
	id      rowID
	vals    []sqltypes.Value
	deleted bool
}

// tableData is the heap + indexes for one table.
type tableData struct {
	schema *TableSchema
	rows   []storedRow
	byID   map[rowID]int // rowID → position in rows
	live   int           // number of non-deleted rows

	// indexes maps upper-cased index name → secondary index (hash or
	// ordered, single- or multi-column; see index.go). The PK and UNIQUE
	// constraints get implicit composite indexes in uniqueIdx.
	indexes   map[string]secondaryIndex
	uniqueIdx []*uniqueIndex // parallel to schema constraint list (PK first if present)

	// heapReads counts row materialisations out of the heap (get hits
	// and scan visits). It is the access-path introspection the
	// index-only aggregate tests assert "reads zero table rows" with;
	// atomic because SELECTs run concurrently under the read lock.
	heapReads atomic.Int64
}

func newTableData(schema *TableSchema) *tableData {
	td := &tableData{
		schema:  schema,
		byID:    make(map[rowID]int),
		indexes: make(map[string]secondaryIndex),
	}
	if len(schema.PrimaryKey) > 0 {
		td.uniqueIdx = append(td.uniqueIdx, newUniqueIndex("PRIMARY KEY", schema, schema.PrimaryKey))
	}
	for _, u := range schema.Uniques {
		td.uniqueIdx = append(td.uniqueIdx, newUniqueIndex("UNIQUE", schema, u))
	}
	return td
}

// insert adds a row (already validated and coerced) and maintains indexes.
func (td *tableData) insert(id rowID, vals []sqltypes.Value) error {
	for _, ui := range td.uniqueIdx {
		if err := ui.check(vals, 0); err != nil {
			return err
		}
	}
	pos := len(td.rows)
	td.rows = append(td.rows, storedRow{id: id, vals: vals})
	td.byID[id] = pos
	td.live++
	for _, ui := range td.uniqueIdx {
		ui.add(vals, id)
	}
	for _, idx := range td.indexes {
		idx.addRow(vals, id)
	}
	return nil
}

// delete tombstones a row and removes it from indexes.
func (td *tableData) delete(id rowID) ([]sqltypes.Value, error) {
	pos, ok := td.byID[id]
	if !ok || td.rows[pos].deleted {
		return nil, fmt.Errorf("sqldb: row %d not found in %s", id, td.schema.Name)
	}
	vals := td.rows[pos].vals
	td.rows[pos].deleted = true
	td.live--
	for _, ui := range td.uniqueIdx {
		ui.remove(vals, id)
	}
	for _, idx := range td.indexes {
		idx.removeRow(vals, id)
	}
	return vals, nil
}

// update replaces a row's values in place, maintaining indexes and
// checking unique constraints against all rows but itself.
func (td *tableData) update(id rowID, newVals []sqltypes.Value) ([]sqltypes.Value, error) {
	pos, ok := td.byID[id]
	if !ok || td.rows[pos].deleted {
		return nil, fmt.Errorf("sqldb: row %d not found in %s", id, td.schema.Name)
	}
	old := td.rows[pos].vals
	for _, ui := range td.uniqueIdx {
		if err := ui.check(newVals, id); err != nil {
			return nil, err
		}
	}
	for _, ui := range td.uniqueIdx {
		ui.remove(old, id)
		ui.add(newVals, id)
	}
	for _, idx := range td.indexes {
		idx.removeRow(old, id)
		idx.addRow(newVals, id)
	}
	td.rows[pos].vals = newVals
	return old, nil
}

// fetch returns the live row values for id without touching the read
// counter. Reader loops (index scans, join probes, boundary fetches)
// use it with one batched heapReads.Add per call site, so the hot path
// avoids a shared atomic RMW per row.
func (td *tableData) fetch(id rowID) ([]sqltypes.Value, bool) {
	pos, ok := td.byID[id]
	if !ok || td.rows[pos].deleted {
		return nil, false
	}
	return td.rows[pos].vals, true
}

// get returns the live row values for id, counting the read. Used by
// the low-frequency point paths (DML row collection under the writer
// lock); reader loops use fetch + a batched count instead.
func (td *tableData) get(id rowID) ([]sqltypes.Value, bool) {
	vals, ok := td.fetch(id)
	if ok {
		td.heapReads.Add(1)
	}
	return vals, ok
}

// scan calls f for each live row in insertion order; f returns false to stop.
func (td *tableData) scan(f func(id rowID, vals []sqltypes.Value) bool) {
	visited := int64(0)
	for i := range td.rows {
		r := &td.rows[i]
		if r.deleted {
			continue
		}
		visited++
		if !f(r.id, r.vals) {
			break
		}
	}
	td.heapReads.Add(visited)
}

// indexOnColumns returns the secondary index declared over exactly the
// given column tuple, if any.
func (td *tableData) indexOnColumns(cols []string) (secondaryIndex, bool) {
	for _, idx := range td.indexes {
		if sameCols(idx.columns(), cols) {
			return idx, true
		}
	}
	return nil, false
}

// indexNames returns the table's secondary index names, sorted, so the
// planner's candidate walk is deterministic.
func (td *tableData) indexNames() []string {
	names := make([]string, 0, len(td.indexes))
	for name := range td.indexes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// compact rewrites the heap dropping tombstones; called at checkpoint.
func (td *tableData) compact() {
	if td.live == len(td.rows) {
		return
	}
	kept := make([]storedRow, 0, td.live)
	td.byID = make(map[rowID]int, td.live)
	for _, r := range td.rows {
		if r.deleted {
			continue
		}
		td.byID[r.id] = len(kept)
		kept = append(kept, r)
	}
	td.rows = kept
}

// ---------- unique (PK / UNIQUE) indexes ----------

// uniqueIndex enforces PRIMARY KEY / UNIQUE over a column tuple.
// SQL semantics: rows containing NULL in any constrained column are
// exempt from uniqueness (except PK columns, which are NOT NULL anyway).
type uniqueIndex struct {
	label   string
	cols    []int
	colName []string
	kinds   []sqltypes.Kind // declared column kinds, for probe coercion
	entries map[string]rowID
}

func newUniqueIndex(label string, schema *TableSchema, cols []string) *uniqueIndex {
	ui := &uniqueIndex{label: label, colName: cols, entries: make(map[string]rowID)}
	for _, c := range cols {
		ci := schema.ColIndex(c)
		ui.cols = append(ui.cols, ci)
		ui.kinds = append(ui.kinds, schema.Cols[ci].Type.Kind)
	}
	return ui
}

func (ui *uniqueIndex) key(vals []sqltypes.Value) (string, bool) {
	tuple := make([]sqltypes.Value, len(ui.cols))
	for i, ci := range ui.cols {
		if vals[ci].IsNull() {
			return "", false
		}
		tuple[i] = vals[ci]
	}
	return encodeKey(tuple...), true
}

func (ui *uniqueIndex) check(vals []sqltypes.Value, self rowID) error {
	k, ok := ui.key(vals)
	if !ok {
		return nil
	}
	if existing, dup := ui.entries[k]; dup && existing != self {
		return fmt.Errorf("sqldb: %s violation on (%s)", ui.label, strings.Join(ui.colName, ", "))
	}
	return nil
}

func (ui *uniqueIndex) add(vals []sqltypes.Value, id rowID) {
	if k, ok := ui.key(vals); ok {
		ui.entries[k] = id
	}
}

func (ui *uniqueIndex) remove(vals []sqltypes.Value, id rowID) {
	if k, ok := ui.key(vals); ok {
		if ui.entries[k] == id {
			delete(ui.entries, k)
		}
	}
}

// lookup returns the row holding the given key tuple, if any. Probe
// values may come from another table's columns (FK checks), so each is
// aligned with this index's column kinds first; usable=false means the
// probe cannot be served here and the caller must fall back to a scan.
func (ui *uniqueIndex) lookup(tuple []sqltypes.Value) (id rowID, found, usable bool) {
	probe := make([]sqltypes.Value, len(tuple))
	for i, v := range tuple {
		if v.IsNull() {
			return 0, false, true // NULL never matches a unique key
		}
		pv, ok := probeValue(ui.kinds[i], v)
		if !ok {
			return 0, false, false
		}
		probe[i] = pv
	}
	id, found = ui.entries[encodeKey(probe...)]
	return id, found, true
}
