package sqldb

import (
	"bufio"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/iofault"
	"repro/internal/sqltypes"
)

// readWALFrames decodes every intact frame of a WAL file, returning the
// records with their transaction IDs in file order.
func readWALFrames(t *testing.T, path string) (recs []walRecord, txIDs []uint64) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return recs, txIDs
		}
		payload := make([]byte, getUint32(hdr[0:4]))
		if _, err := io.ReadFull(br, payload); err != nil {
			t.Fatal("torn frame in synced WAL")
		}
		if crc32.ChecksumIEEE(payload) != getUint32(hdr[4:8]) {
			t.Fatal("corrupt frame in synced WAL")
		}
		rec, txID, err := decodeWALRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
		txIDs = append(txIDs, txID)
	}
}

// TestGroupCommitDurabilityOrdering drives many concurrent committers
// through the group-commit path and asserts the durability contract:
// when Exec returns, the transaction's full BEGIN..COMMIT frame sequence
// is already on disk (no torn or missing acknowledged transactions), log
// order equals commit order (transaction IDs strictly increasing, each
// transaction's frames contiguous), and a crash at this instant — the
// files copied as-is to a fresh directory — recovers every acknowledged
// row.
func TestGroupCommitDurabilityOrdering(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.CheckpointEvery = 0 // keep everything in the WAL
	if _, err := db.Exec(`CREATE TABLE T (ID INTEGER PRIMARY KEY, W INTEGER)`); err != nil {
		t.Fatal(err)
	}

	const workers, each = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := db.Exec(`INSERT INTO T VALUES (?, ?)`,
					sqltypes.NewInt(int64(w*each+i)), sqltypes.NewInt(int64(w))); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Every acknowledged transaction must already be durable: inspect
	// the live WAL without closing the database (Close would checkpoint
	// and truncate it).
	recs, txIDs := readWALFrames(t, filepath.Join(dir, "wal.log"))
	var (
		open      = map[uint64]bool{}
		commits   []uint64
		lastBegin uint64
	)
	for i, rec := range recs {
		id := txIDs[i]
		switch rec.op {
		case walOpBegin:
			open[id] = true
			lastBegin = id
		case walOpCommit:
			if !open[id] {
				t.Fatalf("COMMIT for tx %d without BEGIN", id)
			}
			delete(open, id)
			commits = append(commits, id)
		case walOpEpoch: // log header, not part of any transaction
		default:
			// Frames of one transaction are staged contiguously: a
			// record must belong to the most recently begun transaction.
			if id != lastBegin {
				t.Fatalf("interleaved record: tx %d inside tx %d", id, lastBegin)
			}
		}
	}
	if len(open) != 0 {
		t.Fatalf("%d transactions left open in the log", len(open))
	}
	if want := workers*each + 1; len(commits) != want { // +1 for the CREATE TABLE
		t.Fatalf("%d committed transactions in log, want %d", len(commits), want)
	}
	for i := 1; i < len(commits); i++ {
		if commits[i] <= commits[i-1] {
			t.Fatalf("log order violates commit order: tx %d after tx %d", commits[i], commits[i-1])
		}
	}

	// Simulated crash: copy the on-disk state and recover from it.
	crashDir := t.TempDir()
	for _, name := range []string{"wal.log", "snapshot.db"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := Open(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	rows, err := rec.Query(`SELECT COUNT(*) FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].Int(); got != workers*each {
		t.Fatalf("recovered %d rows, want %d", got, workers*each)
	}
	db.Close()
}

// TestGroupCommitExplicitTx covers the Tx.Commit path: durability after
// commit, rollback leaving no trace, and the writer lock being released
// before the fsync (a concurrent reader can run while a commit flushes).
func TestGroupCommitExplicitTx(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.CheckpointEvery = 0
	if _, err := db.Exec(`CREATE TABLE T (ID INTEGER PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := tx.Exec(`INSERT INTO T VALUES (?)`, sqltypes.NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rep, err := replayWAL(iofault.Disk{}, filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.tail != tailClean {
		t.Fatalf("synced WAL classified %v, want clean", rep.tail)
	}
	if len(rep.committed) != 2 { // DDL + the 10-row transaction
		t.Fatalf("%d committed txns in WAL, want 2", len(rep.committed))
	}
	if len(rep.committed[1]) != 10 {
		t.Fatalf("committed tx has %d records, want 10", len(rep.committed[1]))
	}

	tx2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Exec(`INSERT INTO T VALUES (?)`, sqltypes.NewInt(99)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(`SELECT COUNT(*) FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].Int() != 10 {
		t.Fatalf("rollback leaked rows: %v", rows.Data[0][0])
	}
}

// TestGroupCommitFailureUnwindsReverseOrder: when one flush batch holds
// overlapping transactions and the fsync fails, the batch must unwind
// in reverse commit order. T1 inserts a row, T2 deletes it; undoing T1
// before T2 would no-op the delete-of-insert and then resurrect the row
// via T2's undo, leaving state that never existed. Both committers must
// see the failure, and the table must return to its pre-batch state.
func TestGroupCommitFailureUnwindsReverseOrder(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.CheckpointEvery = 0
	if err := db.ExecScript(`CREATE TABLE T (ID INTEGER PRIMARY KEY);
		INSERT INTO T VALUES (1)`); err != nil {
		t.Fatal(err)
	}

	// Break the log: further writes hit a closed file descriptor.
	db.mu.Lock()
	db.wal.mu.Lock()
	db.wal.f.Close()
	db.wal.mu.Unlock()

	// Stage two overlapping transactions back-to-back under the writer
	// lock (exactly what concurrent committers produce inside one group
	// window), then complete them in ARRIVAL order — the order that
	// corrupted state before the reverse-order unwind existed.
	mustStage := func(sql string) func() error {
		t.Helper()
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		tx := db.newTx()
		if _, _, err := db.execStmtLocked(tx, stmt, nil); err != nil {
			t.Fatal(err)
		}
		finish, err := db.commitTx(tx)
		if err != nil {
			t.Fatal(err)
		}
		return finish
	}
	fin1 := mustStage(`INSERT INTO T VALUES (2)`)
	fin2 := mustStage(`DELETE FROM T WHERE ID = 2`)
	db.mu.Unlock()

	if err := fin1(); err == nil {
		t.Fatal("T1 commit acknowledged despite WAL failure")
	}
	if err := fin2(); err == nil {
		t.Fatal("T2 commit acknowledged despite WAL failure")
	}

	rows, err := db.Query(`SELECT ID FROM T ORDER BY ID`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Int() != 1 {
		ids := make([]int64, len(rows.Data))
		for i := range rows.Data {
			ids[i] = rows.Data[i][0].Int()
		}
		t.Fatalf("post-failure table = %v, want [1] (pre-batch state)", ids)
	}

	// The failure is sticky: later commits fail and roll back too.
	if _, err := db.Exec(`INSERT INTO T VALUES (3)`); err == nil {
		t.Fatal("commit succeeded on a poisoned WAL")
	}
	rows, _ = db.Query(`SELECT COUNT(*) FROM T`)
	if rows.Data[0][0].Int() != 1 {
		t.Fatalf("sticky-failure commit leaked rows: %v", rows.Data[0][0])
	}
}

// TestGroupCommitBatches asserts that committers staged inside one
// group window share fsyncs. Timing-independent: N transactions are
// staged back-to-back under the writer lock (the state concurrent
// committers produce while a flush is in progress) and then completed
// concurrently — the elected leader must drain them all in one flush.
func TestGroupCommitBatches(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.CheckpointEvery = 0
	if _, err := db.Exec(`CREATE TABLE T (ID INTEGER PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	const n = 16
	db.mu.Lock()
	wal := db.wal
	wal.mu.Lock()
	flushesBefore := wal.flushes
	wal.mu.Unlock()
	finishes := make([]func() error, n)
	for i := 0; i < n; i++ {
		stmt, err := Parse(`INSERT INTO T VALUES (?)`)
		if err != nil {
			t.Fatal(err)
		}
		tx := db.newTx()
		if _, _, err := db.execStmtLocked(tx, stmt, []sqltypes.Value{sqltypes.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
		if finishes[i], err = db.commitTx(tx); err != nil {
			t.Fatal(err)
		}
	}
	db.mu.Unlock()

	var wg sync.WaitGroup
	for _, finish := range finishes {
		wg.Add(1)
		go func(finish func() error) {
			defer wg.Done()
			if err := finish(); err != nil {
				t.Error(err)
			}
		}(finish)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	wal.mu.Lock()
	durable, seq, flushes := wal.durable, wal.seq, wal.flushes-flushesBefore
	wal.mu.Unlock()
	if durable != seq {
		t.Fatalf("pending frames after all commits acked: durable=%d staged=%d", durable, seq)
	}
	if flushes != 1 {
		t.Fatalf("%d commits staged in one window took %d flushes, want 1", n, flushes)
	}
	rows, err := db.Query(`SELECT COUNT(*) FROM T`)
	if err != nil || rows.Data[0][0].Int() != n {
		t.Fatalf("rows=%v err=%v, want %d", rows.Data[0][0], err, n)
	}
}
