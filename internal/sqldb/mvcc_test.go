package sqldb

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sqltypes"
)

// ---------- snapshot isolation under concurrency ----------

// TestMVCCSnapshotIsolation drives sharded single-table writers against
// concurrent readers and checks per-statement snapshot invariants:
//
//   - Group atomicity: a writer rewrites a whole group's V in one
//     UPDATE, so any reader's MIN(V)/MAX(V) over that group must agree —
//     a torn snapshot would surface as MIN != MAX.
//   - Committed-prefix: a writer appends dense ids in batches of ten
//     (one multi-row INSERT each), so any reader must see COUNT(*) a
//     multiple of ten, MAX(ID) == COUNT(*), and SUM(ID) equal to the
//     prefix sum — later stamps may be invisible, earlier ones may not.
//
// COUNT(*) with no WHERE answers from the live-count history, MAX/SUM
// from heap scans, and the group probes from the ordered index, so the
// invariants also cross-check the three read paths against each other.
// Run under -race in CI.
func TestMVCCSnapshotIsolation(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE SIM (ID INTEGER PRIMARY KEY, GRP VARCHAR(8), V INTEGER)`)
	mustExec(t, db, `CREATE INDEX SIM_GRP ON SIM (GRP) USING ORDERED`)
	mustExec(t, db, `CREATE TABLE EVT (ID INTEGER PRIMARY KEY, V INTEGER)`)

	groups := []string{"G0", "G1", "G2", "G3"}
	for i := 0; i < 200; i++ {
		mustExec(t, db, `INSERT INTO SIM VALUES (?, ?, 0)`,
			sqltypes.NewInt(int64(i)), sqltypes.NewString(groups[i%len(groups)]))
	}

	upd, err := db.Prepare(`UPDATE SIM SET V = ? WHERE GRP = ?`)
	if err != nil {
		t.Fatal(err)
	}
	grpAgg, err := db.Prepare(`SELECT MIN(V), MAX(V) FROM SIM WHERE GRP = ?`)
	if err != nil {
		t.Fatal(err)
	}
	evtAgg, err := db.Prepare(`SELECT COUNT(*), MAX(ID), SUM(ID) FROM EVT`)
	if err != nil {
		t.Fatal(err)
	}

	const (
		updates = 150
		batches = 60
	)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures []string
	)
	report := func(format string, args ...any) {
		mu.Lock()
		if len(failures) < 5 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}
	done := make(chan struct{})

	// Writer: whole-group rewrites through the sharded path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= updates; i++ {
			g := groups[i%len(groups)]
			if _, err := upd.Exec(sqltypes.NewInt(int64(i)), sqltypes.NewString(g)); err != nil {
				report("group update: %v", err)
				return
			}
		}
	}()

	// Writer: dense-id batch appends on a second table; its latch is
	// independent of SIM's, so the two writers commit concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < batches; b++ {
			var sb strings.Builder
			sb.WriteString(`INSERT INTO EVT VALUES `)
			for j := 1; j <= 10; j++ {
				if j > 1 {
					sb.WriteString(", ")
				}
				id := b*10 + j
				fmt.Fprintf(&sb, "(%d, %d)", id, id)
			}
			if _, err := db.Exec(sb.String()); err != nil {
				report("batch insert: %v", err)
				return
			}
		}
	}()

	go func() { wg.Wait(); close(done) }()

	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					if i > 0 {
						return
					}
				default:
				}
				rows, err := grpAgg.Query(sqltypes.NewString(groups[(r+i)%len(groups)]))
				if err != nil {
					report("group read: %v", err)
					return
				}
				lo, hi := rows.Data[0][0], rows.Data[0][1]
				if lo.Int() != hi.Int() {
					report("torn group snapshot: MIN(V)=%d MAX(V)=%d", lo.Int(), hi.Int())
					return
				}
				rows, err = evtAgg.Query()
				if err != nil {
					report("prefix read: %v", err)
					return
				}
				n := rows.Data[0][0].Int()
				if n == 0 {
					continue
				}
				maxID, sum := rows.Data[0][1].Int(), rows.Data[0][2].Int()
				if n%10 != 0 || maxID != n || sum != n*(n+1)/2 {
					report("not a committed prefix: COUNT=%d MAX=%d SUM=%d", n, maxID, sum)
					return
				}
			}
		}(r)
	}
	readers.Wait()
	<-done
	for _, f := range failures {
		t.Error(f)
	}

	// Quiesced final state: last writes are visible.
	rows := mustQuery(t, db, `SELECT COUNT(*) FROM EVT`)
	if got := rows.Data[0][0].Int(); got != batches*10 {
		t.Fatalf("final EVT count = %d, want %d", got, batches*10)
	}
}

// TestShardedWriteClassification pins down which statements take the
// sharded (per-table latch) write path: single-table DML on FK-free,
// DATALINK-free tables only. FK-bearing tables must stay on the
// exclusive path — their constraint checks read other tables.
func TestShardedWriteClassification(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE FREE (ID INTEGER PRIMARY KEY, V INTEGER)`)
	mustExec(t, db, `CREATE TABLE PARENT (ID INTEGER PRIMARY KEY)`)
	mustExec(t, db, `CREATE TABLE CHILD (ID INTEGER PRIMARY KEY, PID INTEGER REFERENCES PARENT (ID))`)

	classify := func(sql string) *tableData {
		t.Helper()
		ast, err := Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		db.mu.RLock()
		defer db.mu.RUnlock()
		return db.shardedTarget(ast)
	}
	if classify(`INSERT INTO FREE VALUES (1, 1)`) == nil {
		t.Error("FK-free insert should shard")
	}
	if classify(`UPDATE FREE SET V = 2 WHERE ID = 1`) == nil {
		t.Error("FK-free update should shard")
	}
	if classify(`DELETE FROM FREE WHERE ID = 1`) == nil {
		t.Error("FK-free delete should shard")
	}
	if classify(`INSERT INTO CHILD VALUES (1, 1)`) != nil {
		t.Error("FK child must take the exclusive path")
	}
	if classify(`DELETE FROM PARENT WHERE ID = 1`) != nil {
		t.Error("FK parent must take the exclusive path")
	}
	if classify(`CREATE INDEX FREE_V ON FREE (V) USING HASH`) != nil {
		t.Error("DDL must take the exclusive path")
	}

	// The exclusive path still enforces the constraint.
	mustExec(t, db, `INSERT INTO PARENT VALUES (7)`)
	mustExec(t, db, `INSERT INTO CHILD VALUES (1, 7)`)
	if _, err := db.Exec(`DELETE FROM PARENT WHERE ID = 7`); err == nil {
		t.Fatal("FK violation not caught")
	}
}

// ---------- vacuum ----------

func countVersions(td *tableData) (slots, versions int) {
	td.latch.RLock()
	defer td.latch.RUnlock()
	for _, s := range td.slots {
		slots++
		for v := s.head.Load(); v != nil; v = v.prev {
			versions++
		}
	}
	return slots, versions
}

func countIndexEntries(idx secondaryIndex) int {
	n := 0
	switch ix := idx.(type) {
	case *hashIndex:
		for _, es := range ix.entries {
			n += len(es)
		}
	case *orderedIndex:
		ix.scanRange(nil, nil, false, func(_ string, es []*idxEntry) bool {
			n += len(es)
			return true
		})
	}
	return n
}

// TestVacuumReclaim: after delete/update-heavy churn, Vacuum returns the
// heap (slots and version chains) and every index — hash and ordered —
// to the pre-churn baseline, and the data still answers correctly.
func TestVacuumReclaim(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE T (ID INTEGER PRIMARY KEY, A VARCHAR(16), B INTEGER)`)
	mustExec(t, db, `CREATE INDEX T_A ON T (A) USING HASH`)
	mustExec(t, db, `CREATE INDEX T_B ON T (B) USING ORDERED`)
	for i := 0; i < 100; i++ {
		mustExec(t, db, `INSERT INTO T VALUES (?, ?, ?)`,
			sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprintf("A%02d", i%10)), sqltypes.NewInt(int64(i)))
	}
	if err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	td := db.data["T"]
	baseSlots, baseVersions := countVersions(td)
	if baseSlots != 100 || baseVersions != 100 {
		t.Fatalf("baseline: %d slots / %d versions, want 100/100", baseSlots, baseVersions)
	}
	baseIdx := map[string]int{}
	ordered, _ := td.indexOnColumns([]string{"B"})
	for _, name := range td.indexNames() {
		baseIdx[name] = countIndexEntries(td.indexes[name])
	}
	baseNodes := ordered.(*orderedIndex).nodeCount()

	// Churn: three rounds of insert + rewrite + delete on ids >= 1000.
	for r := 0; r < 3; r++ {
		for i := 0; i < 500; i++ {
			id := 1000 + r*1000 + i
			mustExec(t, db, `INSERT INTO T VALUES (?, ?, ?)`,
				sqltypes.NewInt(int64(id)), sqltypes.NewString(fmt.Sprintf("A%02d", id%10)), sqltypes.NewInt(int64(id)))
		}
		mustExec(t, db, `UPDATE T SET B = B + 1 WHERE ID >= 1000`)
		mustExec(t, db, `DELETE FROM T WHERE ID >= 1000`)
	}
	if _, dirtyVersions := countVersions(td); dirtyVersions <= baseVersions {
		t.Fatalf("churn left no dead versions to reclaim (%d)", dirtyVersions)
	}
	dirtyNodes := ordered.(*orderedIndex).nodeCount()

	if err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	slots, versions := countVersions(td)
	if slots != baseSlots || versions != baseVersions {
		t.Fatalf("after vacuum: %d slots / %d versions, want %d/%d", slots, versions, baseSlots, baseVersions)
	}
	for _, name := range td.indexNames() {
		if got := countIndexEntries(td.indexes[name]); got != baseIdx[name] {
			t.Fatalf("index %s: %d entries after vacuum, want %d", name, got, baseIdx[name])
		}
	}
	// The tree merges hollow leaves but does not repack survivors, so
	// allow a little slack over the pristine baseline while insisting
	// the churn-time growth is gone.
	if got := ordered.(*orderedIndex).nodeCount(); got > 2*baseNodes || got >= dirtyNodes {
		t.Fatalf("ordered index: %d nodes after vacuum (baseline %d, churn peak %d)", got, baseNodes, dirtyNodes)
	}
	if d := td.dead.Load(); d != 0 {
		t.Fatalf("dead counter = %d after vacuum", d)
	}

	rows := mustQuery(t, db, `SELECT COUNT(*), SUM(B) FROM T`)
	if rows.Data[0][0].Int() != 100 || rows.Data[0][1].Int() != 99*100/2 {
		t.Fatalf("data wrong after vacuum: %v", rows.Data)
	}
	rows = mustQuery(t, db, `SELECT COUNT(*) FROM T WHERE A = 'A03'`)
	if rows.Data[0][0].Int() != 10 {
		t.Fatalf("hash-index read after vacuum: %v", rows.Data)
	}
}

// TestAutoVacuum: once the dead-version debt crosses the configured
// threshold, a background vacuum runs without any explicit call and the
// debt returns to zero.
func TestAutoVacuum(t *testing.T) {
	db := memDB(t)
	db.AutoVacuumDeadRows = 50
	mustExec(t, db, `CREATE TABLE T (ID INTEGER PRIMARY KEY, V INTEGER)`)
	for i := 0; i < 200; i++ {
		mustExec(t, db, `INSERT INTO T VALUES (?, ?)`, sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i)))
	}
	mustExec(t, db, `DELETE FROM T WHERE ID >= 0`)

	td := db.data["T"]
	deadline := time.Now().Add(5 * time.Second)
	for {
		if td.dead.Load() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-vacuum never ran: dead=%d", td.dead.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	slots, versions := countVersions(td)
	if slots != 0 || versions != 0 {
		t.Fatalf("auto-vacuum left %d slots / %d versions", slots, versions)
	}
}

// ---------- ORDER BY ... LIMIT top-K ----------

func rowSig(rows *Rows) []string {
	out := make([]string, len(rows.Data))
	for i, r := range rows.Data {
		out[i] = encodeKey(r...)
	}
	return out
}

// TestTopKOrderByLimit: the bounded-heap selection must return exactly
// the prefix the full sort would (including tie order, which follows
// first-appearance like the stable sort), and the plan advertises
// itself via the " top-k" AccessPath suffix.
func TestTopKOrderByLimit(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE R (ID INTEGER PRIMARY KEY, K INTEGER, S VARCHAR(8))`)
	for i := 0; i < 500; i++ {
		mustExec(t, db, `INSERT INTO R VALUES (?, ?, ?)`,
			sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64((i*37)%101)), sqltypes.NewString(fmt.Sprintf("S%02d", i%25)))
	}

	st, err := db.Prepare(`SELECT ID, K FROM R ORDER BY K, ID LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if path, err := st.AccessPath(); err != nil || !strings.Contains(path, " top-k") {
		t.Fatalf("AccessPath = %q (%v), want top-k suffix", path, err)
	}
	full := rowSig(mustQuery(t, db, `SELECT ID, K FROM R ORDER BY K, ID`))
	got, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	if want := full[:10]; !equalStrings(rowSig(got), want) {
		t.Fatalf("top-k prefix mismatch:\n got %v\nwant %v", rowSig(got), want)
	}

	// OFFSET shifts the window, still off the heap.
	windowed := rowSig(mustQuery(t, db, `SELECT ID, K FROM R ORDER BY K, ID LIMIT 7 OFFSET 5`))
	if !equalStrings(windowed, full[5:12]) {
		t.Fatalf("top-k window mismatch:\n got %v\nwant %v", windowed, full[5:12])
	}

	// Heavy ties: S repeats 20x per value; heap selection must keep the
	// stable (first-appearance) order the full sort produces.
	fullTies := rowSig(mustQuery(t, db, `SELECT ID, S FROM R ORDER BY S`))
	ties := rowSig(mustQuery(t, db, `SELECT ID, S FROM R ORDER BY S LIMIT 30`))
	if !equalStrings(ties, fullTies[:30]) {
		t.Fatalf("top-k tie order mismatch:\n got %v\nwant %v", ties, fullTies[:30])
	}

	// No LIMIT → full sort, no top-k advert.
	stFull, err := db.Prepare(`SELECT ID, K FROM R ORDER BY K, ID`)
	if err != nil {
		t.Fatal(err)
	}
	if path, _ := stFull.AccessPath(); strings.Contains(path, " top-k") {
		t.Fatalf("unlimited sort advertised top-k: %q", path)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------- group-ordered LIMIT early stop ----------

// TestGroupedFoldEarlyStop: a group-ordered fold with LIMIT k (no
// HAVING, no ORDER BY, no DISTINCT) must stop the index walk after the
// k-th group closes — observable as a heap-read count near k groups'
// worth of rows instead of the whole table — and still return exactly
// the full query's first k groups.
func TestGroupedFoldEarlyStop(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE GL (ID INTEGER PRIMARY KEY, G VARCHAR(8), V INTEGER)`)
	mustExec(t, db, `CREATE INDEX GL_G ON GL (G) USING ORDERED`)
	const groups, per = 100, 20
	for g := 0; g < groups; g++ {
		for j := 0; j < per; j++ {
			mustExec(t, db, `INSERT INTO GL VALUES (?, ?, ?)`,
				sqltypes.NewInt(int64(g*per+j)), sqltypes.NewString(fmt.Sprintf("G%03d", g)), sqltypes.NewInt(int64(j)))
		}
	}

	st, err := db.Prepare(`SELECT G, SUM(V) FROM GL GROUP BY G LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if path, err := st.AccessPath(); err != nil || !strings.Contains(path, "group-ordered") {
		t.Fatalf("AccessPath = %q (%v), want group-ordered", path, err)
	}
	full := rowSig(mustQuery(t, db, `SELECT G, SUM(V) FROM GL GROUP BY G`))

	base := db.HeapRowReads("GL")
	got, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	reads := db.HeapRowReads("GL") - base
	if !equalStrings(rowSig(got), full[:3]) {
		t.Fatalf("limited fold mismatch:\n got %v\nwant %v", rowSig(got), full[:3])
	}
	// 3 groups of 20 rows, plus the boundary row that trips the stop.
	if reads > 5*per {
		t.Fatalf("early stop ineffective: %d heap reads for 3 of %d groups", reads, groups)
	}

	// OFFSET counts toward the stop bound.
	windowed := rowSig(mustQuery(t, db, `SELECT G, SUM(V) FROM GL GROUP BY G LIMIT 3 OFFSET 2`))
	if !equalStrings(windowed, full[2:5]) {
		t.Fatalf("offset window mismatch:\n got %v\nwant %v", windowed, full[2:5])
	}

	// HAVING disables the early stop (groups may be filtered out) but
	// the answer must stay right.
	having := mustQuery(t, db, `SELECT G, SUM(V) FROM GL GROUP BY G HAVING SUM(V) > 0 LIMIT 3`)
	if !equalStrings(rowSig(having), full[:3]) {
		t.Fatalf("HAVING+LIMIT mismatch: %v", rowSig(having))
	}
}
