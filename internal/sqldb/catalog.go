package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqltypes"
)

// Column is a column in a table schema.
type Column struct {
	Name    string
	Type    sqltypes.TypeInfo
	NotNull bool
	Default *sqltypes.Value
}

// ForeignKey is a referential-integrity constraint from this table's Cols
// to RefTable's RefCols. The engine enforces RESTRICT semantics on both
// sides, matching the paper's reliance on catalogue FK metadata for
// hyperlink browsing.
type ForeignKey struct {
	Cols     []string
	RefTable string
	RefCols  []string
}

// TableSchema is the full declared shape of a table.
type TableSchema struct {
	Name        string
	Cols        []Column
	PrimaryKey  []string
	Uniques     [][]string
	ForeignKeys []ForeignKey

	colIdx map[string]int // upper-cased name → position
}

// ColIndex returns the position of the named column (case-insensitive),
// or -1 when absent.
func (t *TableSchema) ColIndex(name string) int {
	if i, ok := t.colIdx[strings.ToUpper(name)]; ok {
		return i
	}
	return -1
}

// Col returns the column definition by (case-insensitive) name.
func (t *TableSchema) Col(name string) (Column, bool) {
	i := t.ColIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return t.Cols[i], true
}

// ColNames returns the column names in declaration order.
func (t *TableSchema) ColNames() []string {
	names := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		names[i] = c.Name
	}
	return names
}

// DatalinkColumns returns the indexes of DATALINK columns, used by the
// executor to route link-control work.
func (t *TableSchema) DatalinkColumns() []int {
	var out []int
	for i, c := range t.Cols {
		if c.Type.Kind == sqltypes.KindDatalink {
			out = append(out, i)
		}
	}
	return out
}

func (t *TableSchema) rebuildIndex() {
	t.colIdx = make(map[string]int, len(t.Cols))
	for i, c := range t.Cols {
		t.colIdx[strings.ToUpper(c.Name)] = i
	}
}

// Catalog holds every table schema, keyed by upper-cased table name.
// It is the metadata source for XUIS generation: table names, column
// names/types, primary keys and foreign keys, exactly the inventory the
// paper's default-XUIS tool extracts via JDBC.
type Catalog struct {
	tables map[string]*TableSchema
}

// NewCatalog returns an empty catalogue.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*TableSchema)}
}

// Table looks up a schema by case-insensitive name.
func (c *Catalog) Table(name string) (*TableSchema, bool) {
	t, ok := c.tables[strings.ToUpper(name)]
	return t, ok
}

// TableNames returns all table names, sorted.
func (c *Catalog) TableNames() []string {
	names := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// ReferencedBy returns, for the given table's primary-key columns, every
// (table, column) pair that declares a foreign key to it. This powers the
// paper's "primary key browsing": SIMULATION_KEY links to the three
// tables in which it appears as a foreign key.
func (c *Catalog) ReferencedBy(table string) []FKRef {
	target, ok := c.Table(table)
	if !ok {
		return nil
	}
	var out []FKRef
	for _, name := range c.TableNames() {
		t, _ := c.Table(name)
		for _, fk := range t.ForeignKeys {
			if strings.EqualFold(fk.RefTable, target.Name) {
				for i, col := range fk.Cols {
					out = append(out, FKRef{Table: t.Name, Column: col, RefColumn: fk.RefCols[i]})
				}
			}
		}
	}
	return out
}

// FKRef identifies one referencing column of a foreign key.
type FKRef struct {
	Table     string // referencing table
	Column    string // referencing column
	RefColumn string // referenced (PK) column
}

// addTable validates a CREATE TABLE statement against the catalogue and
// installs the schema.
func (c *Catalog) addTable(stmt *CreateTableStmt) (*TableSchema, error) {
	key := strings.ToUpper(stmt.Table)
	if _, exists := c.tables[key]; exists {
		return nil, fmt.Errorf("sqldb: table %s already exists", stmt.Table)
	}
	if len(stmt.Cols) == 0 {
		return nil, fmt.Errorf("sqldb: table %s has no columns", stmt.Table)
	}
	t := &TableSchema{
		Name:       strings.ToUpper(stmt.Table),
		PrimaryKey: upperAll(stmt.PrimaryKey),
	}
	seen := map[string]bool{}
	for _, cd := range stmt.Cols {
		name := strings.ToUpper(cd.Name)
		if seen[name] {
			return nil, fmt.Errorf("sqldb: duplicate column %s in table %s", cd.Name, stmt.Table)
		}
		seen[name] = true
		col := Column{Name: name, Type: cd.Type, NotNull: cd.NotNull}
		if cd.Default != nil {
			dv, err := sqltypes.CoerceFor(cd.Type, *cd.Default)
			if err != nil {
				return nil, fmt.Errorf("sqldb: default for %s.%s: %w", stmt.Table, cd.Name, err)
			}
			col.Default = &dv
		}
		if cd.Type.Kind == sqltypes.KindDatalink && cd.Type.Datalink != nil {
			if err := cd.Type.Datalink.Validate(); err != nil {
				return nil, err
			}
		}
		t.Cols = append(t.Cols, col)
	}
	t.rebuildIndex()
	for _, pk := range t.PrimaryKey {
		i := t.ColIndex(pk)
		if i < 0 {
			return nil, fmt.Errorf("sqldb: PRIMARY KEY column %s not in table %s", pk, stmt.Table)
		}
		t.Cols[i].NotNull = true
	}
	for _, u := range stmt.Uniques {
		uu := upperAll(u)
		for _, col := range uu {
			if t.ColIndex(col) < 0 {
				return nil, fmt.Errorf("sqldb: UNIQUE column %s not in table %s", col, stmt.Table)
			}
		}
		t.Uniques = append(t.Uniques, uu)
	}
	for _, fk := range stmt.ForeignKeys {
		def := ForeignKey{Cols: upperAll(fk.Cols), RefTable: strings.ToUpper(fk.RefTable), RefCols: upperAll(fk.RefCols)}
		if len(def.Cols) != len(def.RefCols) {
			return nil, fmt.Errorf("sqldb: foreign key column count mismatch on table %s", stmt.Table)
		}
		for _, col := range def.Cols {
			if t.ColIndex(col) < 0 {
				return nil, fmt.Errorf("sqldb: FOREIGN KEY column %s not in table %s", col, stmt.Table)
			}
		}
		ref, ok := c.Table(def.RefTable)
		if !ok && def.RefTable != t.Name {
			return nil, fmt.Errorf("sqldb: foreign key references unknown table %s", fk.RefTable)
		}
		if ok {
			for _, rc := range def.RefCols {
				if ref.ColIndex(rc) < 0 {
					return nil, fmt.Errorf("sqldb: foreign key references unknown column %s.%s", fk.RefTable, rc)
				}
			}
		}
		t.ForeignKeys = append(t.ForeignKeys, def)
	}
	c.tables[key] = t
	return t, nil
}

func (c *Catalog) dropTable(name string) error {
	key := strings.ToUpper(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("sqldb: table %s does not exist", name)
	}
	// RESTRICT: refuse to drop a table still referenced by another.
	for _, other := range c.tables {
		if other.Name == key {
			continue
		}
		for _, fk := range other.ForeignKeys {
			if fk.RefTable == key {
				return fmt.Errorf("sqldb: cannot drop %s: referenced by %s", name, other.Name)
			}
		}
	}
	delete(c.tables, key)
	return nil
}

func upperAll(in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = strings.ToUpper(s)
	}
	return out
}
