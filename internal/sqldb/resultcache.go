package sqldb

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/sqltypes"
)

// Query result cache.
//
// The archive workload the paper describes is dominated by a small set
// of hot metadata queries repeated over and over between rare ingests
// (Graywulf makes the same observation for scientific result sets). The
// result cache serves those repeats from completed, size-capped result
// sets instead of re-executing the statement. Opt-in via
// DB.SetResultCache(bytes); consulted only on the auto-commit
// Stmt.query path (explicit transactions and scripts run in latest-mode
// visibility, which must observe the transaction's own writes).
//
// Identity: an entry is keyed by statement text + the canonical
// encoding of its bound arguments (key.go) — the same identity the plan
// cache uses for the text plus the engine's canonical value identity
// for the args, including its documented far-integer collision window.
// Plans containing volatile functions (NOW / CURRENT_TIMESTAMP) are
// never cached (selectPlan.cacheable).
//
// Visibility contract (why a hit can never be a stale read): an entry
// records asOf — the snapshot the filling statement executed at — and
// each source table carries lastWrite, the newest commit stamp that
// wrote it. Both lastWrite and the global lastTS are published under
// DB.commitMu, lastWrite first (mvccRefs.commit). A lookup at snapshot
// snap serves an entry only when
//
//	ent.epoch == current schema epoch   (no DDL in between)
//	snap >= ent.asOf                    (the reader is no older)
//	every table's lastWrite <= ent.asOf (no write since the fill)
//
// Suppose a commit with stamp ts <= snap changed a source table. Its
// lastWrite >= ts was stored before lastTS advanced to ts, and snap >=
// ts was read after; so at serve time lastWrite > ent.asOf is observed
// and the entry is rejected. Writes newer than snap can only cause
// false-negative rejections — never a wrong hit. The commit hook
// (commitTx) additionally drops entries over written tables eagerly;
// that sweep reclaims memory but the serve-time check above is the
// correctness backstop, so its timing (after commitMu is released) is
// not load-bearing. DDL flushes the whole cache (flushResultCache at
// every schema-epoch bump) and the epoch check rejects any straggler.
//
// Memory: entries store one flat []Value slab per result (rows are
// subslices), with bytes estimated as rowFootprint per row plus the
// variable payload sizes (sqltypes.Value.Size). When the database has
// Options.MemoryBudget, cached bytes are charged against the same pool
// as live statement buffers — insert refuses (statement still
// succeeds, uncached) when the pool is exhausted, and every eviction,
// invalidation or flush refunds in full.
//
// Locking: mu is a leaf lock — taken under db.mu read sections (the
// lookup path) and after commitMu is released (the invalidation hook),
// never around either.

const (
	// resultCacheMaxRows caps cached result sets by row count: the cache
	// targets the hot small browse queries, not bulk exports.
	resultCacheMaxRows = 1024
	// resultCacheEntryDivisor caps one entry at capacity/divisor bytes,
	// so a single large result cannot monopolise the cache.
	resultCacheEntryDivisor = 8
)

// cacheEntry is one cached result set.
type cacheEntry struct {
	key  string // stmt text + canonical arg encoding
	stmt string // stmt text alone (AccessPath introspection)

	cols  []string
	kinds []sqltypes.Kind
	flat  []sqltypes.Value // nrows*ncols values, row-major
	ncols int
	nrows int

	bytes  int64
	asOf   uint64 // snapshot the filling statement executed at
	epoch  uint64 // schema epoch at fill time
	tables []*tableData

	elem *list.Element
}

// resultCache is the epoch- and table-version-invalidated LRU.
type resultCache struct {
	db *DB

	mu       sync.Mutex
	capBytes int64
	used     int64
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element
	// byTable indexes entries by source table so the commit hook drops
	// O(affected) entries, not O(cache).
	byTable map[*tableData]map[*cacheEntry]struct{}
	// stmts counts live entries per statement text, for AccessPath's
	// " cached" tag.
	stmts map[string]int
}

func newResultCache(db *DB, capBytes int64) *resultCache {
	return &resultCache{
		db:       db,
		capBytes: capBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		byTable:  make(map[*tableData]map[*cacheEntry]struct{}),
		stmts:    make(map[string]int),
	}
}

// cacheKey builds the entry identity for a statement text and its bound
// arguments.
func cacheKey(text string, args []sqltypes.Value) string {
	if len(args) == 0 {
		return text
	}
	return text + "\x00" + encodeKey(args...)
}

// lookup returns a fresh copy of the cached result for key, valid at
// (epoch, snap), or nil on miss. Entries that fail the epoch or
// table-version check are dropped (they can never be served again);
// entries merely newer than the caller's snapshot are kept for newer
// readers. Counts a hit or miss on the metrics.
func (rc *resultCache) lookup(key string, epoch, snap uint64) *Rows {
	rc.mu.Lock()
	el, ok := rc.entries[key]
	if !ok {
		rc.mu.Unlock()
		rc.db.met.rcMisses.Inc()
		return nil
	}
	ent := el.Value.(*cacheEntry)
	if ent.epoch != epoch {
		// DDL straggler (flush raced): permanently unservable.
		rc.removeLocked(ent)
		rc.mu.Unlock()
		rc.db.met.rcMisses.Inc()
		return nil
	}
	for _, td := range ent.tables {
		if td.lastWrite.Load() > ent.asOf {
			// Written since the fill: serving it to ANY snapshot taken
			// after that write would be stale, and snapshots older than
			// the write no longer start (snapshots only move forward).
			rc.removeLocked(ent)
			rc.mu.Unlock()
			rc.db.met.rcInvalidations.Inc()
			rc.db.met.rcMisses.Inc()
			return nil
		}
	}
	if snap < ent.asOf {
		// A reader older than the fill (possible only through exotic
		// snapshot pinning): not served, not evicted.
		rc.mu.Unlock()
		rc.db.met.rcMisses.Inc()
		return nil
	}
	rc.order.MoveToFront(el)
	// Copy out under the lock: the entry may be evicted the moment it
	// is released, and callers own (and may mutate) the returned Rows.
	out := ent.materialise()
	rc.mu.Unlock()
	rc.db.met.rcHits.Inc()
	return out
}

// materialise builds a caller-owned Rows from the entry's flat slab.
// Caller holds rc.mu (reads only).
func (ent *cacheEntry) materialise() *Rows {
	cols := make([]string, len(ent.cols))
	copy(cols, ent.cols)
	kinds := make([]sqltypes.Kind, len(ent.kinds))
	copy(kinds, ent.kinds)
	out := newRows(cols, kinds)
	flat := make([]sqltypes.Value, len(ent.flat))
	copy(flat, ent.flat)
	out.Data = make([][]sqltypes.Value, ent.nrows)
	for i := 0; i < ent.nrows; i++ {
		out.Data[i] = flat[i*ent.ncols : (i+1)*ent.ncols : (i+1)*ent.ncols]
	}
	return out
}

// entryBytes estimates the retained size of a result: the per-row
// footprint (slice header + value structs) plus variable payloads.
func entryBytes(rows *Rows) int64 {
	b := int64(0)
	for _, r := range rows.Data {
		b += rowFootprint(len(r))
		for _, v := range r {
			b += int64(v.Size())
		}
	}
	return b
}

// insert stores a completed result set, charging the memory budget and
// evicting LRU entries to fit. Oversized results (rows or bytes) are
// silently skipped — the statement already succeeded. The rows are
// deep-copied: the caller's Rows may be arena-backed and Closed later.
func (rc *resultCache) insert(key, stmtText string, tables []*tableData, rows *Rows, asOf, epoch uint64) {
	if len(rows.Data) > resultCacheMaxRows {
		return
	}
	bytes := entryBytes(rows)
	if bytes > rc.capBytes/resultCacheEntryDivisor {
		return
	}
	// Charge the database memory budget BEFORE accepting: cached bytes
	// compete with live statement buffers for the same pool. Refused
	// charges skip caching; the statement result is unaffected.
	if rc.db.memBudget > 0 {
		if rc.db.memUsed.Add(bytes) > rc.db.memBudget {
			rc.db.memUsed.Add(-bytes)
			return
		}
	}
	ncols := len(rows.Columns)
	ent := &cacheEntry{
		key:    key,
		stmt:   stmtText,
		cols:   append([]string(nil), rows.Columns...),
		kinds:  append([]sqltypes.Kind(nil), rows.Kinds...),
		ncols:  ncols,
		nrows:  len(rows.Data),
		bytes:  bytes,
		asOf:   asOf,
		epoch:  epoch,
		tables: tables,
	}
	ent.flat = make([]sqltypes.Value, 0, ent.nrows*ncols)
	for _, r := range rows.Data {
		ent.flat = append(ent.flat, r...)
	}

	rc.mu.Lock()
	if old, ok := rc.entries[key]; ok {
		// Raced fill of the same key: keep the newer answer.
		rc.removeLocked(old.Value.(*cacheEntry))
	}
	for rc.used+bytes > rc.capBytes {
		back := rc.order.Back()
		if back == nil {
			break
		}
		rc.removeLocked(back.Value.(*cacheEntry))
		rc.db.met.rcEvicts.Inc()
	}
	ent.elem = rc.order.PushFront(ent)
	rc.entries[key] = ent.elem
	rc.used += ent.bytes
	rc.stmts[ent.stmt]++
	for _, td := range ent.tables {
		set := rc.byTable[td]
		if set == nil {
			set = make(map[*cacheEntry]struct{})
			rc.byTable[td] = set
		}
		set[ent] = struct{}{}
	}
	rc.mu.Unlock()
}

// removeLocked unlinks an entry and refunds its bytes (cache accounting
// and, when budgeted, the database memory pool). Caller holds rc.mu.
func (rc *resultCache) removeLocked(ent *cacheEntry) {
	if ent.elem == nil {
		return
	}
	rc.order.Remove(ent.elem)
	ent.elem = nil
	delete(rc.entries, ent.key)
	rc.used -= ent.bytes
	if rc.stmts[ent.stmt]--; rc.stmts[ent.stmt] <= 0 {
		delete(rc.stmts, ent.stmt)
	}
	for _, td := range ent.tables {
		if set := rc.byTable[td]; set != nil {
			delete(set, ent)
			if len(set) == 0 {
				delete(rc.byTable, td)
			}
		}
	}
	if rc.db.memBudget > 0 {
		rc.db.memUsed.Add(-ent.bytes)
	}
}

// invalidateTables drops every entry sourced from any of the given
// tables. Called from the commit hook after the commit stamp publishes;
// see the visibility contract above for why the timing is safe.
func (rc *resultCache) invalidateTables(tds []*tableData) {
	rc.mu.Lock()
	n := 0
	for _, td := range tds {
		set := rc.byTable[td]
		for ent := range set {
			rc.removeLocked(ent)
			n++
		}
	}
	rc.mu.Unlock()
	for i := 0; i < n; i++ {
		rc.db.met.rcInvalidations.Inc()
	}
}

// flush empties the cache, refunding every charge. Called on DDL
// (schema-epoch bumps) and when the cache is disabled or replaced.
func (rc *resultCache) flush() {
	rc.mu.Lock()
	for rc.order.Len() > 0 {
		rc.removeLocked(rc.order.Back().Value.(*cacheEntry))
	}
	rc.mu.Unlock()
}

// hasStmt reports whether any live entry was filled from the given
// statement text (AccessPath's " cached" tag).
func (rc *resultCache) hasStmt(text string) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.stmts[text] > 0
}

// bytesUsed reports the cache's current retained bytes (gauge).
func (rc *resultCache) bytesUsed() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.used
}

// entryCount reports how many result sets are cached (status page).
func (rc *resultCache) entryCount() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.order.Len()
}

// String renders a one-line summary for debugging.
func (rc *resultCache) String() string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return fmt.Sprintf("resultCache{entries=%d bytes=%d/%d}", rc.order.Len(), rc.used, rc.capBytes)
}
