package turb

import (
	"fmt"
	"math"
)

// PGM renders the slice as a binary PGM (P5) grayscale image, values
// normalised to the slice's own range. This reproduces the paper's
// "GetImage" visualisation operation: instead of shipping the N³ cube,
// the server ships an N×N image of the requested plane.
func (sl *Slice) PGM() []byte {
	header := fmt.Sprintf("P5\n%d %d\n255\n", sl.N, sl.N)
	out := make([]byte, 0, len(header)+sl.N*sl.N)
	out = append(out, header...)
	st := sl.Stats()
	span := st.Max - st.Min
	for _, v := range sl.Data {
		var g byte
		if span > 0 {
			g = byte(math.Round((float64(v) - st.Min) / span * 255))
		}
		out = append(out, g)
	}
	return out
}

// PPM renders the slice as a binary PPM (P6) with a blue–white–red
// diverging palette centred on zero, the conventional rendering for
// signed velocity components.
func (sl *Slice) PPM() []byte {
	header := fmt.Sprintf("P6\n%d %d\n255\n", sl.N, sl.N)
	out := make([]byte, 0, len(header)+3*sl.N*sl.N)
	out = append(out, header...)
	st := sl.Stats()
	limit := math.Max(math.Abs(st.Min), math.Abs(st.Max))
	for _, v := range sl.Data {
		r, g, b := diverging(float64(v), limit)
		out = append(out, r, g, b)
	}
	return out
}

// diverging maps v in [-limit, limit] to blue(−)→white(0)→red(+).
func diverging(v, limit float64) (byte, byte, byte) {
	if limit == 0 {
		return 255, 255, 255
	}
	t := v / limit
	if t > 1 {
		t = 1
	}
	if t < -1 {
		t = -1
	}
	if t >= 0 {
		c := byte(math.Round(255 * (1 - t)))
		return 255, c, c
	}
	c := byte(math.Round(255 * (1 + t)))
	return c, c, 255
}
