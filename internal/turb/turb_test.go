package turb

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(8, 3, 42)
	b := Generate(8, 3, 42)
	for _, f := range Fields {
		for i := range a.Data[f] {
			if a.Data[f][i] != b.Data[f][i] {
				t.Fatalf("field %s differs at %d", f, i)
			}
		}
	}
	c := Generate(8, 3, 43)
	same := true
	for i := range a.Data["u"] {
		if a.Data["u"][i] != c.Data["u"][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fields")
	}
}

func TestRoundTrip(t *testing.T) {
	s := Generate(12, 7, 1)
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != FileBytes(12) {
		t.Fatalf("wrote %d bytes, want %d", n, FileBytes(12))
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 12 || got.Step != 7 || got.Reynolds != s.Reynolds {
		t.Fatalf("header = %+v", got.Header)
	}
	for _, f := range Fields {
		for i := range s.Data[f] {
			if s.Data[f][i] != got.Data[f][i] {
				t.Fatalf("field %s differs at %d", f, i)
			}
		}
	}
}

func TestReadHeaderOnly(t *testing.T) {
	s := Generate(8, 2, 5)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 8 || h.Step != 2 {
		t.Fatalf("header = %+v", h)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a tsf file at all........."))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestSliceAxes(t *testing.T) {
	s := Generate(6, 1, 9)
	for _, axis := range []Axis{AxisX, AxisY, AxisZ} {
		sl, err := s.ExtractSlice("u", axis, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(sl.Data) != 36 {
			t.Fatalf("axis %v: %d values", axis, len(sl.Data))
		}
	}
	// Slice values must match direct grid lookups.
	sl, _ := s.ExtractSlice("p", AxisX, 2)
	for k := 0; k < 6; k++ {
		for j := 0; j < 6; j++ {
			if sl.Data[k*6+j] != s.At("p", 2, j, k) {
				t.Fatalf("x-slice mismatch at j=%d k=%d", j, k)
			}
		}
	}
	sl, _ = s.ExtractSlice("v", AxisY, 4)
	for k := 0; k < 6; k++ {
		for i := 0; i < 6; i++ {
			if sl.Data[k*6+i] != s.At("v", i, 4, k) {
				t.Fatalf("y-slice mismatch at i=%d k=%d", i, k)
			}
		}
	}
	sl, _ = s.ExtractSlice("w", AxisZ, 1)
	for j := 0; j < 6; j++ {
		for i := 0; i < 6; i++ {
			if sl.Data[j*6+i] != s.At("w", i, j, 1) {
				t.Fatalf("z-slice mismatch at i=%d j=%d", i, j)
			}
		}
	}
}

func TestSliceErrors(t *testing.T) {
	s := Generate(4, 0, 1)
	if _, err := s.ExtractSlice("q", AxisX, 0); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := s.ExtractSlice("u", AxisX, 4); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := s.ExtractSlice("u", AxisX, -1); err == nil {
		t.Fatal("negative index accepted")
	}
}

// TestSliceFromFileMatchesInMemory verifies the streaming extractor
// against whole-cube slicing, and that it reads only a fraction of the
// file (the paper's data-reduction claim).
func TestSliceFromFileMatchesInMemory(t *testing.T) {
	s := Generate(16, 4, 77)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	file := bytes.NewReader(buf.Bytes())
	for _, axis := range []Axis{AxisX, AxisY, AxisZ} {
		want, err := s.ExtractSlice("v", axis, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, bytesRead, err := SliceFromFile(file, "v", axis, 5)
		if err != nil {
			t.Fatalf("axis %v: %v", axis, err)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("axis %v: value %d differs", axis, i)
			}
		}
		if bytesRead >= FileBytes(16) {
			t.Fatalf("axis %v read the whole file (%d bytes)", axis, bytesRead)
		}
		if axis == AxisZ && bytesRead != 16*16*4 {
			t.Fatalf("z-slice read %d bytes, want %d", bytesRead, 16*16*4)
		}
	}
}

func TestFileBytesAndReduction(t *testing.T) {
	// 128³ × 4 fields × 4 bytes + 32-byte header.
	want := int64(128*128*128*4*4) + 32
	if got := FileBytes(128); got != want {
		t.Fatalf("FileBytes(128) = %d, want %d", got, want)
	}
	// Reduction factor ≈ 4·N (4 fields × N planes).
	rf := ReductionFactor(128)
	if rf < 500 || rf > 520 {
		t.Fatalf("ReductionFactor(128) = %.1f, want ≈512", rf)
	}
}

func TestStats(t *testing.T) {
	s := Generate(8, 0, 3)
	st, err := s.FieldStats("u")
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 512 {
		t.Fatalf("count = %d", st.Count)
	}
	if st.Min >= st.Max {
		t.Fatalf("degenerate range [%f, %f]", st.Min, st.Max)
	}
	if st.RMS <= 0 {
		t.Fatalf("rms = %f", st.RMS)
	}
	// Taylor–Green u has zero spatial mean; noise shifts it only slightly.
	if math.Abs(st.Mean) > 0.05 {
		t.Fatalf("mean = %f, want ≈0", st.Mean)
	}
	if _, err := s.FieldStats("nope"); err == nil {
		t.Fatal("unknown field accepted")
	}
	if !bytes.Contains([]byte(st.Report()), []byte("field u")) {
		t.Fatal("report missing field name")
	}
}

// TestKineticEnergyDecays validates generator physics: Taylor–Green
// kinetic energy decays monotonically with timestep.
func TestKineticEnergyDecays(t *testing.T) {
	e0 := Generate(16, 0, 1).KineticEnergy()
	e10 := Generate(16, 10, 1).KineticEnergy()
	e50 := Generate(16, 50, 1).KineticEnergy()
	if !(e0 > e10 && e10 > e50) {
		t.Fatalf("energy not decaying: %f %f %f", e0, e10, e50)
	}
	// Analytic check: E(t) ≈ E(0)·e^{-4νt} for the vortex part; with
	// small noise the ratio should be within 20% of the analytic value.
	nu, dt := 0.01, 0.05
	analytic := math.Exp(-4 * nu * 50 * dt)
	ratio := e50 / e0
	if math.Abs(ratio-analytic)/analytic > 0.2 {
		t.Fatalf("decay ratio %.4f vs analytic %.4f", ratio, analytic)
	}
}

func TestImages(t *testing.T) {
	s := Generate(8, 1, 2)
	sl, _ := s.ExtractSlice("u", AxisZ, 0)
	pgm := sl.PGM()
	if !bytes.HasPrefix(pgm, []byte("P5\n8 8\n255\n")) {
		t.Fatalf("pgm header: %q", pgm[:12])
	}
	if len(pgm) != len("P5\n8 8\n255\n")+64 {
		t.Fatalf("pgm size = %d", len(pgm))
	}
	ppm := sl.PPM()
	if !bytes.HasPrefix(ppm, []byte("P6\n8 8\n255\n")) {
		t.Fatalf("ppm header: %q", ppm[:12])
	}
	if len(ppm) != len("P6\n8 8\n255\n")+3*64 {
		t.Fatalf("ppm size = %d", len(ppm))
	}
}

func TestHistogramAndPercentile(t *testing.T) {
	sl := &Slice{N: 2, Field: "u", Data: []float32{0, 1, 2, 3}}
	h := sl.Histogram(4)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 4 {
		t.Fatalf("histogram total = %d", total)
	}
	if p := sl.Percentile(0); p != 0 {
		t.Fatalf("p0 = %f", p)
	}
	if p := sl.Percentile(100); p != 3 {
		t.Fatalf("p100 = %f", p)
	}
	if p := sl.Percentile(50); p != 1.5 {
		t.Fatalf("p50 = %f", p)
	}
}

// Property: encode/decode headers round-trip for arbitrary plausible
// parameters.
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(nRaw uint8, step uint16, time, re float64) bool {
		n := int(nRaw%32) + 2
		s := &Snapshot{
			Header: Header{N: n, Step: int(step), Time: math.Abs(time), Reynolds: math.Abs(re)},
			Data:   map[string][]float32{},
		}
		for _, fld := range Fields {
			s.Data[fld] = make([]float32, n*n*n)
		}
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			return false
		}
		h, err := ReadHeader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		return h.N == n && h.Step == int(step)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestParseAxis(t *testing.T) {
	for s, want := range map[string]Axis{"x": AxisX, "y": AxisY, "z": AxisZ, "x0": AxisX} {
		got, err := ParseAxis(s)
		if err != nil || got != want {
			t.Errorf("ParseAxis(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseAxis("t"); err == nil {
		t.Error("bad axis accepted")
	}
}
