package turb

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats summarises one field of a snapshot — the archive's cheap
// "data reduction to a few numbers" operation.
type Stats struct {
	Field string
	Count int
	Min   float64
	Max   float64
	Mean  float64
	RMS   float64
}

// FieldStats computes summary statistics over one field.
func (s *Snapshot) FieldStats(field string) (Stats, error) {
	vals, ok := s.Data[field]
	if !ok {
		return Stats{}, fmt.Errorf("turb: unknown field %q", field)
	}
	return computeStats(field, vals), nil
}

// SliceStats computes summary statistics over a slice.
func (sl *Slice) Stats() Stats { return computeStats(sl.Field, sl.Data) }

func computeStats(field string, vals []float32) Stats {
	st := Stats{Field: field, Count: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(vals) == 0 {
		st.Min, st.Max = 0, 0
		return st
	}
	var sum, sumSq float64
	for _, v := range vals {
		f := float64(v)
		sum += f
		sumSq += f * f
		if f < st.Min {
			st.Min = f
		}
		if f > st.Max {
			st.Max = f
		}
	}
	st.Mean = sum / float64(len(vals))
	st.RMS = math.Sqrt(sumSq / float64(len(vals)))
	return st
}

// KineticEnergy returns the volume-averaged kinetic energy
// ½⟨u²+v²+w²⟩ — the quantity whose decay validates the generator
// against the analytic Taylor–Green solution.
func (s *Snapshot) KineticEnergy() float64 {
	u, v, w := s.Data["u"], s.Data["v"], s.Data["w"]
	var sum float64
	for i := range u {
		sum += float64(u[i])*float64(u[i]) + float64(v[i])*float64(v[i]) + float64(w[i])*float64(w[i])
	}
	return 0.5 * sum / float64(len(u))
}

// Report renders stats as the text block a post-processing operation
// returns to the browser.
func (st Stats) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "field %s: n=%d\n", st.Field, st.Count)
	fmt.Fprintf(&b, "  min  = % .6f\n", st.Min)
	fmt.Fprintf(&b, "  max  = % .6f\n", st.Max)
	fmt.Fprintf(&b, "  mean = % .6f\n", st.Mean)
	fmt.Fprintf(&b, "  rms  = % .6f\n", st.RMS)
	return b.String()
}

// Histogram builds a fixed-width histogram of a slice's values, the
// basis for the "GetImage"-style visual summaries.
func (sl *Slice) Histogram(bins int) []int {
	if bins <= 0 {
		bins = 16
	}
	st := sl.Stats()
	out := make([]int, bins)
	span := st.Max - st.Min
	if span == 0 {
		out[0] = len(sl.Data)
		return out
	}
	for _, v := range sl.Data {
		b := int((float64(v) - st.Min) / span * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		out[b]++
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of a slice's values.
func (sl *Slice) Percentile(p float64) float64 {
	if len(sl.Data) == 0 {
		return 0
	}
	vals := make([]float64, len(sl.Data))
	for i, v := range sl.Data {
		vals[i] = float64(v)
	}
	sort.Float64s(vals)
	if p <= 0 {
		return vals[0]
	}
	if p >= 100 {
		return vals[len(vals)-1]
	}
	idx := p / 100 * float64(len(vals)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(vals) {
		return vals[lo]
	}
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}
