package turb

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Axis selects the plane normal for slicing.
type Axis uint8

// Slice axes.
const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

// String names the axis.
func (a Axis) String() string {
	switch a {
	case AxisX:
		return "x"
	case AxisY:
		return "y"
	case AxisZ:
		return "z"
	default:
		return fmt.Sprintf("Axis(%d)", uint8(a))
	}
}

// ParseAxis maps "x"/"y"/"z" (as sent by operation forms) to an Axis.
func ParseAxis(s string) (Axis, error) {
	switch s {
	case "x", "X", "x0":
		return AxisX, nil
	case "y", "Y":
		return AxisY, nil
	case "z", "Z":
		return AxisZ, nil
	}
	return 0, fmt.Errorf("turb: unknown axis %q", s)
}

// Slice is one extracted N×N plane of one field. This is the paper's
// flagship data-reduction operation: a slice is N× smaller than the cube
// it came from.
type Slice struct {
	N     int
	Field string
	Axis  Axis
	Index int
	Data  []float32 // N*N values, row-major
}

// Bytes returns the serialised size of the slice payload.
func (sl *Slice) Bytes() int64 { return int64(sl.N) * int64(sl.N) * 4 }

// ExtractSlice cuts the plane axis=index from a materialised snapshot.
func (s *Snapshot) ExtractSlice(field string, axis Axis, index int) (*Slice, error) {
	vals, ok := s.Data[field]
	if !ok {
		return nil, fmt.Errorf("turb: unknown field %q", field)
	}
	n := s.N
	if index < 0 || index >= n {
		return nil, fmt.Errorf("turb: slice index %d outside grid [0,%d)", index, n)
	}
	out := make([]float32, n*n)
	switch axis {
	case AxisX:
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				out[k*n+j] = vals[(k*n+j)*n+index]
			}
		}
	case AxisY:
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				out[k*n+i] = vals[(k*n+index)*n+i]
			}
		}
	case AxisZ:
		copy(out, vals[index*n*n:(index+1)*n*n])
	default:
		return nil, fmt.Errorf("turb: bad axis %v", axis)
	}
	return &Slice{N: n, Field: field, Axis: axis, Index: index, Data: out}, nil
}

// SliceFromFile extracts a plane directly from a TSF stream without
// materialising the cube — the server-side post-processing path. It
// returns the slice and the number of payload bytes actually read,
// which the data-reduction experiment (E3) reports: a z-slice reads
// exactly N² values; x/y slices read strided runs.
func SliceFromFile(rs io.ReadSeeker, field string, axis Axis, index int) (*Slice, int64, error) {
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	h, err := ReadHeader(rs)
	if err != nil {
		return nil, 0, err
	}
	n := h.N
	if index < 0 || index >= n {
		return nil, 0, fmt.Errorf("turb: slice index %d outside grid [0,%d)", index, n)
	}
	base, err := fieldOffset(h, field)
	if err != nil {
		return nil, 0, err
	}
	out := make([]float32, n*n)
	var bytesRead int64
	readRun := func(off int64, dst []float32) error {
		if _, err := rs.Seek(off, io.SeekStart); err != nil {
			return err
		}
		buf := make([]byte, len(dst)*4)
		if _, err := io.ReadFull(rs, buf); err != nil {
			return err
		}
		bytesRead += int64(len(buf))
		for i := range dst {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		return nil
	}
	switch axis {
	case AxisZ:
		// One contiguous run of N² values.
		off := base + int64(index)*int64(n)*int64(n)*4
		if err := readRun(off, out); err != nil {
			return nil, bytesRead, err
		}
	case AxisY:
		// N runs of N values (one row per k).
		row := make([]float32, n)
		for k := 0; k < n; k++ {
			off := base + (int64(k)*int64(n)+int64(index))*int64(n)*4
			if err := readRun(off, row); err != nil {
				return nil, bytesRead, err
			}
			copy(out[k*n:], row)
		}
	case AxisX:
		// N² single values; read row-by-row to amortise seeks.
		row := make([]float32, n)
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				off := base + ((int64(k)*int64(n)+int64(j))*int64(n)+int64(index))*4
				if err := readRun(off, row[:1]); err != nil {
					return nil, bytesRead, err
				}
				out[k*n+j] = row[0]
			}
		}
	default:
		return nil, 0, fmt.Errorf("turb: bad axis %v", axis)
	}
	return &Slice{N: n, Field: field, Axis: axis, Index: index, Data: out}, bytesRead, nil
}

// ReductionFactor reports cube bytes / slice bytes for grid side n —
// the paper's bandwidth saving from server-side post-processing.
func ReductionFactor(n int) float64 {
	cube := float64(FileBytes(n))
	slice := float64(n) * float64(n) * 4
	return cube / slice
}
