package turb

import "math"

// Generate synthesises a deterministic snapshot: a decaying Taylor–Green
// vortex (the classic analytic incompressible flow used to validate
// turbulence codes) perturbed with seeded pseudo-random fluctuations so
// slices and statistics look like real simulation output. The same
// (n, step, seed) always yields byte-identical data, which the archive
// tests and benchmarks rely on.
func Generate(n, step int, seed int64) *Snapshot {
	const (
		nu = 0.01 // kinematic viscosity
		dt = 0.05 // timestep
	)
	t := float64(step) * dt
	decay := math.Exp(-2 * nu * t)
	s := &Snapshot{
		Header: Header{N: n, Step: step, Time: t, Reynolds: 1 / nu},
		Data:   make(map[string][]float32, len(Fields)),
	}
	n3 := n * n * n
	for _, f := range Fields {
		s.Data[f] = make([]float32, n3)
	}
	u, v, w, p := s.Data["u"], s.Data["v"], s.Data["w"], s.Data["p"]
	h := 2 * math.Pi / float64(n)
	idx := 0
	for k := 0; k < n; k++ {
		z := float64(k) * h
		cz, c2z := math.Cos(z), math.Cos(2*z)
		for j := 0; j < n; j++ {
			y := float64(j) * h
			sy, cy, c2y := math.Sin(y), math.Cos(y), math.Cos(2*y)
			for i := 0; i < n; i++ {
				x := float64(i) * h
				sx, cx, c2x := math.Sin(x), math.Cos(x), math.Cos(2*x)
				noise := fluct(seed, i, j, k)
				u[idx] = float32(decay*(sx*cy*cz) + 0.02*noise)
				v[idx] = float32(decay*(-cx*sy*cz) + 0.02*fluct(seed+1, i, j, k))
				w[idx] = float32(0.02 * fluct(seed+2, i, j, k))
				p[idx] = float32(decay * decay * (c2x + c2y) * (c2z + 2) / 16)
				idx++
			}
		}
	}
	return s
}

// fluct is a cheap deterministic hash-based fluctuation in [-1, 1).
func fluct(seed int64, i, j, k int) float64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(i)*0xBF58476D1CE4E5B9 ^
		uint64(j)*0x94D049BB133111EB ^ uint64(k)*0xD6E8FEB86659FD93
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return float64(h>>11)/float64(1<<53)*2 - 1
}
