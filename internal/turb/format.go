// Package turb is the scientific-data substrate of the reproduction: a
// binary file format for turbulence simulation snapshots (the paper's
// UK Turbulence Consortium result files), a deterministic synthetic
// field generator, and the post-processing kernels the archive's
// server-side operations use — plane slicing, summary statistics and
// image rendering.
//
// A TSF ("turbulence snapshot file") holds the velocity components
// u, v, w and the pressure p on an N³ collocated grid at one timestep —
// the paper's datasets with MEASUREMENT = 'u,v,w,p'. Two grid sizes
// bracket the paper's file sizes: the consortium's "small" (85 MB) and
// "large" (544 MB) simulation files.
package turb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Fields are the stored quantities, in on-disk order.
var Fields = []string{"u", "v", "w", "p"}

const (
	tsfMagic   = "TSF1"
	headerSize = 4 + 4 + 4 + 4 + 8 + 8 // magic, version, n, step, time, reynolds
	version    = 1
)

// Header is the fixed-size TSF preamble.
type Header struct {
	N        int     // grid points per axis
	Step     int     // timestep index
	Time     float64 // simulation time
	Reynolds float64 // Reynolds number of the run
}

// DataBytes returns the payload size (all four fields) for the header.
func (h Header) DataBytes() int64 {
	n := int64(h.N)
	return int64(len(Fields)) * n * n * n * 4
}

// FileBytes returns the total file size for a grid of side n.
func FileBytes(n int) int64 {
	h := Header{N: n}
	return headerSize + h.DataBytes()
}

// Snapshot is a fully materialised timestep.
type Snapshot struct {
	Header
	// Data maps field name → N³ values in x-fastest order:
	// index(i,j,k) = (k*N+j)*N + i.
	Data map[string][]float32
}

// At returns field value at grid point (i,j,k).
func (s *Snapshot) At(field string, i, j, k int) float32 {
	return s.Data[field][(k*s.N+j)*s.N+i]
}

// WriteTo serialises the snapshot. It implements io.WriterTo.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var written int64
	if _, err := bw.WriteString(tsfMagic); err != nil {
		return written, err
	}
	var hdr [headerSize - 4]byte
	binary.LittleEndian.PutUint32(hdr[0:4], version)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(s.N))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(s.Step))
	binary.LittleEndian.PutUint64(hdr[12:20], math.Float64bits(s.Time))
	binary.LittleEndian.PutUint64(hdr[20:28], math.Float64bits(s.Reynolds))
	if _, err := bw.Write(hdr[:]); err != nil {
		return written, err
	}
	written = headerSize
	buf := make([]byte, 4)
	for _, f := range Fields {
		vals := s.Data[f]
		if len(vals) != s.N*s.N*s.N {
			return written, fmt.Errorf("turb: field %s has %d values, want %d", f, len(vals), s.N*s.N*s.N)
		}
		for _, v := range vals {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
			if _, err := bw.Write(buf); err != nil {
				return written, err
			}
			written += 4
		}
	}
	return written, bw.Flush()
}

// ReadHeader parses just the preamble.
func ReadHeader(r io.Reader) (Header, error) {
	var raw [headerSize]byte
	if _, err := io.ReadFull(r, raw[:]); err != nil {
		return Header{}, fmt.Errorf("turb: short header: %w", err)
	}
	if string(raw[0:4]) != tsfMagic {
		return Header{}, fmt.Errorf("turb: not a TSF file (magic %q)", raw[0:4])
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != version {
		return Header{}, fmt.Errorf("turb: unsupported TSF version %d", v)
	}
	h := Header{
		N:        int(binary.LittleEndian.Uint32(raw[8:12])),
		Step:     int(binary.LittleEndian.Uint32(raw[12:16])),
		Time:     math.Float64frombits(binary.LittleEndian.Uint64(raw[16:24])),
		Reynolds: math.Float64frombits(binary.LittleEndian.Uint64(raw[24:32])),
	}
	if h.N <= 0 || h.N > 4096 {
		return Header{}, fmt.Errorf("turb: implausible grid size %d", h.N)
	}
	return h, nil
}

// Read materialises a whole snapshot.
func Read(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	h, err := ReadHeader(br)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{Header: h, Data: make(map[string][]float32, len(Fields))}
	n3 := h.N * h.N * h.N
	buf := make([]byte, 4)
	for _, f := range Fields {
		vals := make([]float32, n3)
		for i := range vals {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("turb: short field %s: %w", f, err)
			}
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
		}
		s.Data[f] = vals
	}
	return s, nil
}

// fieldOffset returns the byte offset of a field's payload.
func fieldOffset(h Header, field string) (int64, error) {
	n3 := int64(h.N) * int64(h.N) * int64(h.N)
	for i, f := range Fields {
		if f == field {
			return headerSize + int64(i)*n3*4, nil
		}
	}
	return 0, fmt.Errorf("turb: unknown field %q", field)
}
