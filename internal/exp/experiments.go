package exp

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dlfs"
	"repro/internal/med"
	"repro/internal/netsim"
	"repro/internal/script"
	"repro/internal/sqltypes"
	"repro/internal/turb"
	"repro/internal/xuis"
)

func fmtDuration(d time.Duration) string { return netsim.FormatDuration(d) }

// E1BandwidthTable regenerates the paper's Table 1 — the experimental
// FTP bandwidth measurements and the derived transfer-time estimates
// for the 85 MB (small) and 544 MB (large) simulation files.
func E1BandwidthTable() Report {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-18s %-12s %-12s %-12s\n", "Time", "Direction", "Bandwidth", "Small(85MB)", "Large(544MB)")
	for _, row := range netsim.Table1(netsim.SuperJANET1999) {
		fmt.Fprintf(&b, "%-8s %-18s %-12s %-12s %-12s\n",
			row.Period, row.Direction, row.Bandwidth,
			netsim.FormatDuration(row.SmallTime), netsim.FormatDuration(row.LargeTime))
	}
	return Report{ID: "E1", Title: "Table 1 — experimental FTP bandwidth measurements", Text: b.String()}
}

// E2Result quantifies one centralised-vs-distributed comparison.
type E2Result struct {
	Size             int64
	Timesteps        int
	Retrievals       int
	CentralWANBytes  int64
	CentralTime      time.Duration
	EASIAWANBytes    int64
	EASIATime        time.Duration
	BytesSavedFactor float64
}

// E2CentralVsDistributed reproduces the "Bandwidth Problems" figure:
// the centralised archive pays an upload leg for every timestep (at the
// slow "To Southampton" rate) before anyone can download; the EASIA
// architecture archives in place, so only retrievals cross the WAN.
func E2CentralVsDistributed(size int64, timesteps, retrievals int, p netsim.Period) E2Result {
	s := netsim.SuperJANET1999
	upRate := s.Rate(p, netsim.ToArchive)
	downRate := s.Rate(p, netsim.FromArchive)

	res := E2Result{Size: size, Timesteps: timesteps, Retrievals: retrievals}
	// Centralised: T uploads + K downloads over the WAN.
	res.CentralWANBytes = size * int64(timesteps+retrievals)
	res.CentralTime = time.Duration(timesteps)*netsim.TransferTimeExact(size, upRate) +
		time.Duration(retrievals)*netsim.TransferTimeExact(size, downRate)
	// EASIA: archiving is local to the generating site; only the K
	// retrievals cross the WAN (serving direction).
	res.EASIAWANBytes = size * int64(retrievals)
	res.EASIATime = time.Duration(retrievals) * netsim.TransferTimeExact(size, downRate)
	if res.EASIAWANBytes > 0 {
		res.BytesSavedFactor = float64(res.CentralWANBytes) / float64(res.EASIAWANBytes)
	}
	return res
}

// E2Report renders the comparison across both paper file sizes and both
// measurement periods for a 100-timestep simulation with 10 retrievals.
func E2Report() Report {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %-8s %-10s %-14s %-12s %-14s %-12s %-8s\n",
		"Size", "Period", "Workload", "Central bytes", "Central t", "EASIA bytes", "EASIA t", "Saving")
	for _, size := range []int64{netsim.SmallSimulationBytes, netsim.LargeSimulationBytes} {
		for _, p := range []netsim.Period{netsim.Day, netsim.Evening} {
			r := E2CentralVsDistributed(size, 100, 10, p)
			fmt.Fprintf(&b, "%-7s %-8s %-10s %-14s %-12s %-14s %-12s %.1fx\n",
				fmtBytes(size), p, "100T+10R",
				fmtBytes(r.CentralWANBytes), fmtDuration(r.CentralTime),
				fmtBytes(r.EASIAWANBytes), fmtDuration(r.EASIATime), r.BytesSavedFactor)
		}
	}
	return Report{ID: "E2", Title: "Bandwidth Problems — centralised vs EASIA (archive in place)", Text: b.String()}
}

// E3Row is one grid size of the data-reduction sweep.
type E3Row struct {
	N               int
	CubeBytes       int64
	OutputBytes     int64 // measured from a real operation run where available
	Reduction       float64
	FullTransfer    time.Duration // shipping the cube at evening download rate
	ReducedTransfer time.Duration
}

// E3DataReduction reproduces the post-processing benefit: server-side
// slicing ships an N² image instead of the 4·N³ cube. Sizes for small
// N are measured by actually running the archived operation; large N
// use the format's exact arithmetic.
func E3DataReduction(dirs tempDirer, measured int, ns []int) ([]E3Row, error) {
	rate := netsim.SuperJANET1999.Rate(netsim.Evening, netsim.FromArchive)
	var rows []E3Row
	for _, n := range ns {
		row := E3Row{N: n, CubeBytes: turb.FileBytes(n)}
		if n <= measured {
			d, err := BuildDemoArchive(dirs, n)
			if err != nil {
				return nil, err
			}
			out, err := d.RunDemoOperation("z")
			d.Close()
			if err != nil {
				return nil, err
			}
			row.OutputBytes = out
		} else {
			// PGM payload: header + N² bytes.
			row.OutputBytes = int64(len(fmt.Sprintf("P5\n%d %d\n255\n", n, n))) + int64(n)*int64(n)
		}
		row.Reduction = float64(row.CubeBytes) / float64(row.OutputBytes)
		row.FullTransfer = netsim.TransferTimeExact(row.CubeBytes, rate)
		row.ReducedTransfer = netsim.TransferTimeExact(row.OutputBytes, rate)
		rows = append(rows, row)
	}
	return rows, nil
}

// E3Report renders the sweep.
func E3Report(dirs tempDirer) (Report, error) {
	rows, err := E3DataReduction(dirs, 48, []int{32, 48, 64, 96, 128, 162})
	if err != nil {
		return Report{}, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-12s %-12s %-10s %-12s %-12s\n",
		"N", "Cube", "Op output", "Reduction", "Ship cube", "Ship output")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %-12s %-12s %-10.0fx %-12s %-12s\n",
			r.N, fmtBytes(r.CubeBytes), fmtBytes(r.OutputBytes), r.Reduction,
			fmtDuration(r.FullTransfer), fmtDuration(r.ReducedTransfer))
	}
	b.WriteString("(N ≤ 48 measured by running the archived GetImage operation; larger N from exact format arithmetic;\n")
	b.WriteString(" transfer times at the evening 1.94 Mbit/s serving rate)\n")
	return Report{ID: "E3", Title: "Server-side post-processing data reduction", Text: b.String()}, nil
}

// E4Row is one point of the server-scaling sweep.
type E4Row struct {
	Servers   int
	Clients   int
	Makespan  time.Duration
	Aggregate netsim.Rate
	Speedup   float64
}

// E4ServerScaling reproduces the distribution benefit: "data
// distribution can reduce access bottlenecks at individual sites".
func E4ServerScaling(clients int, servers []int, fileBytes int64) []E4Row {
	var rows []E4Row
	var base time.Duration
	for _, m := range servers {
		sim := netsim.FairShareDownload(clients, m, fileBytes, 10*netsim.MbitPerSec, 100*netsim.MbitPerSec)
		row := E4Row{Servers: m, Clients: clients, Makespan: sim.Makespan, Aggregate: sim.AggregateRate}
		if base == 0 {
			base = sim.Makespan
		}
		row.Speedup = float64(base) / float64(sim.Makespan)
		rows = append(rows, row)
	}
	return rows
}

// E4Report renders the sweep for 16 concurrent retrievals of the small
// simulation file.
func E4Report() Report {
	rows := E4ServerScaling(16, []int{1, 2, 4, 8, 16}, netsim.SmallSimulationBytes)
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %-9s %-12s %-14s %-8s\n", "Servers", "Clients", "Makespan", "Aggregate", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9d %-9d %-12s %-14s %.2fx\n",
			r.Servers, r.Clients, fmtDuration(r.Makespan), r.Aggregate, r.Speedup)
	}
	b.WriteString("(16 clients each fetch the 85 MB file; 10 Mbit/s uplink per file server)\n")
	return Report{ID: "E4", Title: "Distribution removes retrieval bottlenecks", Text: b.String()}
}

// E5Row is one point of the parallel post-processing sweep.
type E5Row struct {
	Hosts   int
	Jobs    int
	Elapsed time.Duration
	Speedup float64
}

// E5ParallelOps measures real slice operations running simultaneously
// across M "hosts" (worker goroutines): "each machine provides a
// distributed processing capability that allows multiple datasets to be
// post-processed simultaneously".
func E5ParallelOps(gridN, jobs int, hosts []int) []E5Row {
	// Pre-generate a small pool of datasets the jobs cycle over
	// (generation cost is kept out of the measured region).
	pool := 4
	if jobs < pool {
		pool = jobs
	}
	datasets := make([][]byte, pool)
	var buf bytes.Buffer
	for i := range datasets {
		buf.Reset()
		snap := turb.Generate(gridN, i, int64(i))
		if _, err := snap.WriteTo(&buf); err != nil {
			panic(err) // deterministic in-memory write cannot fail
		}
		datasets[i] = append([]byte(nil), buf.Bytes()...)
	}
	// One job = a realistic post-processing request: render every 4th
	// z-plane and every 4th (strided, more expensive) y-plane of u,
	// with statistics for each.
	process := func(data []byte) {
		for idx := 0; idx < gridN; idx += 4 {
			for _, axis := range []turb.Axis{turb.AxisZ, turb.AxisY} {
				sl, _, err := turb.SliceFromFile(bytes.NewReader(data), "u", axis, idx)
				if err != nil {
					panic(err)
				}
				_ = sl.PGM()
				_ = sl.Stats()
			}
		}
	}
	sweep := func(m int) time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		next := make(chan []byte, jobs)
		for j := 0; j < jobs; j++ {
			next <- datasets[j%len(datasets)]
		}
		close(next)
		for w := 0; w < m; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for d := range next {
					process(d)
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	}
	sweep(hosts[0]) // warm-up: page in datasets, grow allocator arenas
	var rows []E5Row
	var base time.Duration
	for _, m := range hosts {
		best := sweep(m)
		for rep := 1; rep < 3; rep++ {
			if e := sweep(m); e < best {
				best = e
			}
		}
		row := E5Row{Hosts: m, Jobs: jobs, Elapsed: best}
		if base == 0 {
			base = best
		}
		row.Speedup = float64(base) / float64(best)
		rows = append(rows, row)
	}
	return rows
}

// E5Report renders the sweep.
func E5Report() Report {
	rows := E5ParallelOps(48, 24, []int{1, 2, 4, 8})
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %-6s %-12s %-8s\n", "Hosts", "Jobs", "Elapsed", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7d %-6d %-12s %.2fx\n", r.Hosts, r.Jobs, r.Elapsed.Round(time.Millisecond), r.Speedup)
	}
	b.WriteString("(24 slice+render jobs over 48³ datasets, spread across M hosts)\n")
	return Report{ID: "E5", Title: "Simultaneous post-processing across file-server hosts", Text: b.String()}
}

// E6EndToEnd replays the system-architecture figure as an executable
// narrative: archive → link → search → browse → token download →
// operation, reporting what moved where.
func E6EndToEnd(dirs tempDirer) (Report, error) {
	d, err := BuildDemoArchive(dirs, 16)
	if err != nil {
		return Report{}, err
	}
	defer d.Close()
	a := d.Archive
	var b strings.Builder

	fmt.Fprintf(&b, "1. dataset archived where generated: %s (linked files on fs1: %d)\n",
		d.DatasetURL, d.FS1.Store().LinkedCount())
	fmt.Fprintf(&b, "2. code archived on second host:     %s (linked files on fs2: %d)\n",
		d.CodeURL, d.FS2.Store().LinkedCount())

	rs, err := a.Search(core.QBE{Table: "RESULT_FILE",
		Restrictions: []core.Restriction{{Column: "MEASUREMENT", Op: "=", Value: "u,v,w,p"}}})
	if err != nil {
		return Report{}, err
	}
	fmt.Fprintf(&b, "3. QBE search over metadata:         %d row(s)\n", len(rs.Rows))

	authorRS, err := a.BrowseFK("AUTHOR", "AUTHOR_KEY", "A19990110151042")
	if err != nil {
		return Report{}, err
	}
	fmt.Fprintf(&b, "4. FK browse to author:              %s\n", authorRS.Row(0)["AUTHOR.NAME"].AsString())

	tokURL, err := a.DownloadURL(d.DatasetURL, core.User{Name: "papiani"})
	if err != nil {
		return Report{}, err
	}
	rc, err := a.OpenDownload(tokURL)
	if err != nil {
		return Report{}, err
	}
	n, err := drainAndClose(rc)
	if err != nil {
		return Report{}, err
	}
	fmt.Fprintf(&b, "5. DATALINK download via token:      %s\n", fmtBytes(n))

	out, err := d.RunDemoOperation("z")
	if err != nil {
		return Report{}, err
	}
	fmt.Fprintf(&b, "6. server-side GetImage operation:   %s shipped instead of %s (%.0fx reduction)\n",
		fmtBytes(out), fmtBytes(n), float64(n)/float64(out))
	return Report{ID: "E6", Title: "System architecture — executable end-to-end flow", Text: b.String()}, nil
}

// E7Report regenerates the sample-schema figure: the five tables with
// keys, and the XUIS fragment generated for AUTHOR.
func E7Report(dirs tempDirer) (Report, error) {
	d, err := BuildDemoArchive(dirs, 8)
	if err != nil {
		return Report{}, err
	}
	defer d.Close()
	cat := d.Archive.DB.Catalog()
	var b strings.Builder
	b.WriteString("Tables:\n")
	for _, name := range cat.TableNames() {
		schema, _ := cat.Table(name)
		fmt.Fprintf(&b, "  %-20s pk=(%s)", schema.Name, strings.Join(schema.PrimaryKey, ", "))
		for _, fk := range schema.ForeignKeys {
			fmt.Fprintf(&b, " fk(%s)->%s", strings.Join(fk.Cols, ","), fk.RefTable)
		}
		b.WriteString("\n")
	}
	spec := d.Archive.Spec()
	author, _ := spec.Table("AUTHOR")
	frag := &xuis.Spec{Database: spec.Database, Tables: []*xuis.Table{author}}
	xml, err := frag.Marshal()
	if err != nil {
		return Report{}, err
	}
	b.WriteString("\nGenerated XUIS fragment (AUTHOR):\n")
	b.Write(xml)
	return Report{ID: "E7", Title: "Sample database schema + default XUIS", Text: b.String()}, nil
}

// E9Report regenerates the paper's three XUIS listing figures: the
// GetImage operation (with parameter form), the SDB URL operation and
// the upload fragment.
func E9Report() (Report, error) {
	col := &xuis.Column{
		Name: "DOWNLOAD_RESULT", ColID: "RESULT_FILE.DOWNLOAD_RESULT",
		Type: xuis.TypeSpec{SQLType: "DATALINK"},
		Operations: []*xuis.Operation{DemoOperation(), {
			Name: "SDB", GuestAccess: true,
			If: &xuis.IfSpec{Conditions: []xuis.Condition{
				{ColID: "RESULT_FILE.FILE_FORMAT", Eq: "'HDF'"},
			}},
			Location:    &xuis.Location{URL: "http://quagga.ecs.soton.ac.uk:8080/servlet/SDBservlet"},
			Description: "NCSA Scientific Data Browser",
		}},
		Upload: &xuis.Upload{
			Type: "EASL", Format: "easl", GuestAccess: false,
			If: &xuis.IfSpec{Conditions: []xuis.Condition{
				{ColID: "RESULT_FILE.SIMULATION_KEY", Eq: "'S19990110150932'"},
				{ColID: "RESULT_FILE.MEASUREMENT", Eq: "'u,v,w,p'"},
			}},
		},
	}
	frag := &xuis.Spec{Database: "TURBULENCE", Tables: []*xuis.Table{{
		Name: "RESULT_FILE", PrimaryKey: "RESULT_FILE.FILE_NAME RESULT_FILE.SIMULATION_KEY",
		Columns: []*xuis.Column{col},
	}}}
	xml, err := frag.Marshal()
	if err != nil {
		return Report{}, err
	}
	return Report{ID: "E9", Title: "XUIS fragments — operation, URL operation, upload", Text: string(xml)}, nil
}

// E10Result summarises the token lifecycle experiment.
type E10Result struct {
	MintPerSec     float64
	ValidatePerSec float64
	ExpirySweep    []string
}

// E10Tokens reproduces the DATALINK-browsing figure's mechanism:
// encrypted access tokens with a finite life.
func E10Tokens() (E10Result, error) {
	auth, err := med.NewTokenAuthority([]byte("e10-secret"), time.Minute)
	if err != nil {
		return E10Result{}, err
	}
	now := time.Date(2000, 3, 27, 12, 0, 0, 0, time.UTC)
	auth.SetClock(func() time.Time { return now })
	const path = "/vol0/run1/ts4.tsf"

	const n = 2000
	start := time.Now()
	tokens := make([]string, n)
	for i := range tokens {
		tok, err := auth.Mint(path, "bench", 0)
		if err != nil {
			return E10Result{}, err
		}
		tokens[i] = tok
	}
	mintRate := float64(n) / time.Since(start).Seconds()
	start = time.Now()
	for _, tok := range tokens {
		if _, err := auth.Validate(tok, path); err != nil {
			return E10Result{}, err
		}
	}
	valRate := float64(n) / time.Since(start).Seconds()

	res := E10Result{MintPerSec: mintRate, ValidatePerSec: valRate}
	tok, _ := auth.Mint(path, "sweep", 60*time.Second)
	for _, age := range []time.Duration{0, 30 * time.Second, 59 * time.Second, 61 * time.Second, time.Hour} {
		probe := now.Add(age)
		auth.SetClock(func() time.Time { return probe })
		_, err := auth.Validate(tok, path)
		verdict := "valid"
		if errors.Is(err, med.ErrTokenExpired) {
			verdict = "EXPIRED"
		} else if err != nil {
			verdict = err.Error()
		}
		res.ExpirySweep = append(res.ExpirySweep, fmt.Sprintf("age %-8s -> %s", age, verdict))
	}
	return res, nil
}

// E10Report renders the token experiment.
func E10Report() (Report, error) {
	r, err := E10Tokens()
	if err != nil {
		return Report{}, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "mint:     %.0f tokens/s\n", r.MintPerSec)
	fmt.Fprintf(&b, "validate: %.0f tokens/s\n", r.ValidatePerSec)
	b.WriteString("expiry sweep (60 s lifetime):\n")
	for _, line := range r.ExpirySweep {
		b.WriteString("  " + line + "\n")
	}
	return Report{ID: "E10", Title: "DATALINK access tokens — encryption, validation, finite life", Text: b.String()}, nil
}

// E11Report reproduces the code-upload implementation figures: the
// batch plan and the sandbox verdicts for legitimate and hostile codes.
func E11Report(dirs tempDirer) (Report, error) {
	d, err := BuildDemoArchiveLimits(dirs, 12,
		script.Limits{MaxSteps: 1_000_000, MaxHeap: 8 << 20, MaxOutput: 1 << 20})
	if err != nil {
		return Report{}, err
	}
	defer d.Close()
	key := map[string]string{"FILE_NAME": "ts4.tsf", "SIMULATION_KEY": "S19990110150932"}
	run := func(code string) (string, error) {
		res, err := d.Archive.UploadAndRun("RESULT_FILE.DOWNLOAD_RESULT", "RESULT_FILE", key,
			[]byte(code), "easl", "main.easl", nil, core.User{Name: "papiani"})
		if err != nil {
			return "", err
		}
		return res.BatchPlan + "--- output ---\n" + res.Stdout, nil
	}
	var b strings.Builder
	ok, err := run(`
let st = sliceStats(filename, "u", "z", 6)
writeFile("report.txt", "rms=" + str(st.rms))
print("post-processing complete")`)
	if err != nil {
		return Report{}, err
	}
	b.WriteString("Legitimate upload (batch plan + output):\n")
	b.WriteString(ok)
	b.WriteString("\nHostile uploads (all must be refused):\n")
	for _, h := range []struct{ name, code string }{
		{"absolute path write", `writeFile("/etc/evil", "x")`},
		{"directory escape", `writeFile("../escape", "x")`},
		{"read outside sandbox", `loadSlice("../../other.tsf", "u", "z", 0)`},
		{"infinite loop", `while (true) { }`},
	} {
		_, err := run(h.code)
		if err == nil {
			return Report{}, fmt.Errorf("exp: hostile code %q executed", h.name)
		}
		fmt.Fprintf(&b, "  %-22s -> refused (%v)\n", h.name, shortErr(err))
	}
	return Report{ID: "E11", Title: "Code upload — batch-plan mechanism and sandbox", Text: b.String()}, nil
}

func shortErr(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i > 0 {
		s = s[:i]
	}
	if len(s) > 90 {
		s = s[:90] + "…"
	}
	return s
}

// E12Report is the SQL/MED guarantee ablation: what each DATALINK
// option buys, demonstrated by fault injection.
func E12Report(dirs tempDirer) (Report, error) {
	var b strings.Builder

	// --- with FILE LINK CONTROL ---
	d, err := BuildDemoArchive(dirs, 8)
	if err != nil {
		return Report{}, err
	}
	defer d.Close()
	u, err := sqltypes.ParseDatalinkURL(d.DatasetURL)
	if err != nil {
		return Report{}, err
	}
	b.WriteString("FILE LINK CONTROL on (paper's configuration):\n")
	if err := d.FS1.Store().Remove(u.Path); errors.Is(err, dlfs.ErrLinked) {
		b.WriteString("  delete linked file      -> refused (referential integrity)\n")
	} else {
		return Report{}, fmt.Errorf("exp: linked file deletable: %v", err)
	}
	if err := d.FS1.Store().Rename(u.Path, "/vol0/run1/renamed.tsf"); errors.Is(err, dlfs.ErrLinked) {
		b.WriteString("  rename linked file      -> refused (referential integrity)\n")
	} else {
		return Report{}, fmt.Errorf("exp: linked file renamable: %v", err)
	}
	if _, err := d.Archive.DB.Exec(
		`INSERT INTO RESULT_FILE VALUES ('ghost.tsf', 'S19990110150932', 9, 'u', 'TSF', 0,
			DLVALUE('http://fs1.sim:80/vol0/run1/ghost.tsf'))`); err != nil {
		b.WriteString("  insert w/ missing file  -> refused (existence check at INSERT)\n")
	} else {
		return Report{}, fmt.Errorf("exp: dangling insert accepted")
	}
	if _, _, err := d.FS1.Store().Open(u.Path, "", nil); errors.Is(err, dlfs.ErrTokenRequired) {
		b.WriteString("  tokenless read          -> refused (READ PERMISSION DB)\n")
	} else {
		return Report{}, fmt.Errorf("exp: tokenless read allowed: %v", err)
	}
	// Transaction consistency: a failed INSERT leaves no pending link.
	before := d.FS1.Store().LinkedCount()
	tx, err := d.Archive.DB.Begin()
	if err != nil {
		return Report{}, err
	}
	if _, err := tx.Exec(`INSERT INTO RESULT_FILE VALUES ('ts5.tsf', 'S19990110150932', 5, 'u', 'TSF', 0, DLVALUE(?))`,
		sqltypes.NewString(d.CodeURL)); err == nil {
		// The code file lives on fs2 and is already linked there; the
		// prepare fails or, if it succeeded, rollback must undo it.
		_ = err
	}
	tx.Rollback()
	if d.FS1.Store().LinkedCount() != before {
		return Report{}, fmt.Errorf("exp: rollback leaked a link")
	}
	b.WriteString("  rolled-back transaction -> no link state leaked (transaction consistency)\n")

	// --- without FILE LINK CONTROL ---
	b.WriteString("NO FILE LINK CONTROL (ablation):\n")
	if _, err := d.Archive.DB.Exec(
		`CREATE TABLE LOOSE_FILE (ID INTEGER PRIMARY KEY, LINK DATALINK LINKTYPE URL NO FILE LINK CONTROL)`); err != nil {
		return Report{}, err
	}
	if _, err := d.Archive.DB.Exec(
		`INSERT INTO LOOSE_FILE VALUES (1, DLVALUE('http://fs1.sim:80/vol0/never/made.tsf'))`); err != nil {
		return Report{}, err
	}
	b.WriteString("  insert w/ missing file  -> accepted (no existence check)\n")
	if _, err := d.Archive.OpenDownload("http://fs1.sim:80/vol0/never/made.tsf"); err != nil {
		b.WriteString("  later read              -> fails only now (dangling link reached the user)\n")
	} else {
		return Report{}, fmt.Errorf("exp: phantom file readable")
	}
	return Report{ID: "E12", Title: "SQL/MED guarantees — enforcement and ablation", Text: b.String()}, nil
}

// All runs every experiment and returns the reports in order.
func All(dirs tempDirer) ([]Report, error) {
	reports := []Report{E1BandwidthTable(), E2Report()}
	e3, err := E3Report(dirs)
	if err != nil {
		return nil, err
	}
	reports = append(reports, e3, E4Report(), E5Report())
	e6, err := E6EndToEnd(dirs)
	if err != nil {
		return nil, err
	}
	e7, err := E7Report(dirs)
	if err != nil {
		return nil, err
	}
	e8, err := E8Report(dirs)
	if err != nil {
		return nil, err
	}
	reports = append(reports, e6, e7, e8)
	e9, err := E9Report()
	if err != nil {
		return nil, err
	}
	e10, err := E10Report()
	if err != nil {
		return nil, err
	}
	e11, err := E11Report(dirs)
	if err != nil {
		return nil, err
	}
	e12, err := E12Report(dirs)
	if err != nil {
		return nil, err
	}
	return append(reports, e9, e10, e11, e12), nil
}
