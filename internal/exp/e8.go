package exp

import (
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"

	"repro/internal/core"
	"repro/internal/webui"
)

// E8Report regenerates the paper's UI figures ("Searching the archive",
// "Result table from querying SIMULATION table") by driving the real
// web front end over HTTP and excerpting the rendered documents.
func E8Report(dirs tempDirer) (Report, error) {
	d, err := BuildDemoArchive(dirs, 12)
	if err != nil {
		return Report{}, err
	}
	defer d.Close()
	if err := d.Archive.Users.Add(core.User{Name: "papiani"}, "s3cret"); err != nil {
		return Report{}, err
	}
	srv := httptest.NewServer(webui.NewServer(d.Archive))
	defer srv.Close()
	jar, err := cookiejar.New(nil)
	if err != nil {
		return Report{}, err
	}
	client := &http.Client{Jar: jar}
	if _, err := client.PostForm(srv.URL+"/login", url.Values{
		"username": {"papiani"}, "password": {"s3cret"},
	}); err != nil {
		return Report{}, err
	}
	get := func(path string) (string, error) {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			return "", fmt.Errorf("exp: GET %s -> %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}

	form, err := get("/table?name=SIMULATION")
	if err != nil {
		return Report{}, err
	}
	results, err := get("/query?table=SIMULATION&all=1")
	if err != nil {
		return Report{}, err
	}
	resultFiles, err := get("/query?table=RESULT_FILE&all=1")
	if err != nil {
		return Report{}, err
	}

	var b strings.Builder
	b.WriteString("Query form (QBE) for SIMULATION — feature checklist:\n")
	for _, f := range []struct{ label, marker string }{
		{"field checkboxes", `name="sel"`},
		{"operator drop-downs", `<option>CONTAINS</option>`},
		{"sample values", "S19990110150932"},
		{"order-by control", `name="orderby"`},
	} {
		fmt.Fprintf(&b, "  %-22s %s\n", f.label, present(form, f.marker))
	}
	b.WriteString("Result table for SIMULATION:\n")
	for _, f := range []struct{ label, marker string }{
		{"PK browse links", "→ RESULT_FILE"},
		{"FK browse link", "mode=fk"},
		{"CLOB size link", "CLOB ("},
	} {
		fmt.Fprintf(&b, "  %-22s %s\n", f.label, present(results, f.marker))
	}
	b.WriteString("Result table for RESULT_FILE:\n")
	for _, f := range []struct{ label, marker string }{
		{"DATALINK size display", "ts4.tsf ("},
		{"tokenized download", "/download?url="},
		{"operation link", "op:GetImage"},
		{"upload link", "upload code"},
	} {
		fmt.Fprintf(&b, "  %-22s %s\n", f.label, present(resultFiles, f.marker))
	}
	fmt.Fprintf(&b, "(rendered documents: form %d bytes, results %d and %d bytes)\n",
		len(form), len(results), len(resultFiles))
	return Report{ID: "E8", Title: "Web UI — query form and hyperlinked result tables", Text: b.String()}, nil
}

func present(doc, marker string) string {
	if strings.Contains(doc, marker) {
		return "present"
	}
	return "MISSING"
}
