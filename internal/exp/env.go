// Package exp is the experiment harness: one function per exhibit in
// the paper (the FTP bandwidth table and every figure that encodes a
// performance or behaviour claim), each regenerating the exhibit from
// the code in this repository. cmd/easiabench prints them; the root
// bench_test.go wraps them as Go benchmarks; EXPERIMENTS.md records
// paper-vs-measured for each.
package exp

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dlfs"
	"repro/internal/med"
	"repro/internal/script"
	"repro/internal/turb"
	"repro/internal/xuis"
)

// Report is one regenerated exhibit.
type Report struct {
	ID    string // "E1" … "E12"
	Title string
	Text  string // the formatted table/figure content
}

// DemoArchive is a fully assembled in-process EASIA deployment used by
// several experiments: two file-server hosts, the turbulence schema,
// one simulation with a real dataset and one archived operation code.
type DemoArchive struct {
	Archive *core.Archive
	FS1     *dlfs.Manager
	FS2     *dlfs.Manager
	// GridN is the dataset grid size.
	GridN int
	// DatasetURL and CodeURL are the archived DATALINK values.
	DatasetURL string
	CodeURL    string
	cleanups   []func()
}

// Close releases the deployment.
func (d *DemoArchive) Close() {
	for i := len(d.cleanups) - 1; i >= 0; i-- {
		d.cleanups[i]()
	}
}

// demoGetImage is the archived post-processing code: render the middle
// slice of the requested component.
const demoGetImage = `
let axis = params["slice"]
let comp = params["type"]
if (axis == nil) { axis = "z" }
if (comp == nil) { comp = "u" }
let info = datasetInfo(filename)
let mid = floor(info.n / 2)
let bytes = writeImage("slice.pgm", filename, comp, axis, mid)
print("rendered", comp, "slice", axis, "=", mid, "(", bytes, "bytes )")
`

// tempDirer abstracts testing.TB and plain callers for workspace dirs.
type tempDirer interface{ TempDir() string }

// BuildDemoArchive assembles the deployment. dirs supplies temporary
// directories (a *testing.T/B in tests, an osTempDirer in cmds).
func BuildDemoArchive(dirs tempDirer, gridN int) (*DemoArchive, error) {
	return BuildDemoArchiveLimits(dirs, gridN,
		script.Limits{MaxSteps: 200_000_000, MaxHeap: 256 << 20, MaxOutput: 16 << 20})
}

// BuildDemoArchiveLimits is BuildDemoArchive with an explicit sandbox
// budget (the fault-injection experiments use small budgets so hostile
// infinite loops are cut off quickly).
func BuildDemoArchiveLimits(dirs tempDirer, gridN int, limits script.Limits) (*DemoArchive, error) {
	secret := []byte("exp-secret")
	a, err := core.Open(core.Config{
		Secret:       secret,
		WorkRoot:     dirs.TempDir(),
		ScriptLimits: limits,
	})
	if err != nil {
		return nil, err
	}
	d := &DemoArchive{Archive: a, GridN: gridN}
	d.cleanups = append(d.cleanups, func() { a.Close() })

	auth, err := med.NewTokenAuthority(secret, 0)
	if err != nil {
		d.Close()
		return nil, err
	}
	mk := func(host string) (*dlfs.Manager, error) {
		store, err := dlfs.NewStore(dirs.TempDir())
		if err != nil {
			return nil, err
		}
		m := dlfs.NewManager(host, store, auth)
		a.AttachFileServer(core.WrapManager(m))
		return m, nil
	}
	if d.FS1, err = mk("fs1.sim:80"); err != nil {
		d.Close()
		return nil, err
	}
	if d.FS2, err = mk("fs2.sim:80"); err != nil {
		d.Close()
		return nil, err
	}
	if err := a.InitTurbulenceSchema(); err != nil {
		d.Close()
		return nil, err
	}
	for _, sql := range []string{
		`INSERT INTO AUTHOR VALUES ('A19990110151042', 'Papiani', 'University of Southampton', 'p@soton.ac.uk')`,
		fmt.Sprintf(`INSERT INTO SIMULATION VALUES ('S19990110150932', 'A19990110151042',
			'Turbulent channel flow', 'DNS of channel flow.', %d, 1395.0, 100, '2000-03-27 09:00:00')`, gridN),
	} {
		if _, err := a.DB.Exec(sql); err != nil {
			d.Close()
			return nil, err
		}
	}
	var tsf bytes.Buffer
	if _, err := turb.Generate(gridN, 4, 7).WriteTo(&tsf); err != nil {
		d.Close()
		return nil, err
	}
	d.DatasetURL, err = a.ArchiveFile("fs1.sim:80", "/vol0/run1/ts4.tsf", bytes.NewReader(tsf.Bytes()))
	if err != nil {
		d.Close()
		return nil, err
	}
	if _, err := a.DB.Exec(fmt.Sprintf(
		`INSERT INTO RESULT_FILE VALUES ('ts4.tsf', 'S19990110150932', 4, 'u,v,w,p', 'TSF', %d, DLVALUE('%s'))`,
		tsf.Len(), d.DatasetURL)); err != nil {
		d.Close()
		return nil, err
	}
	d.CodeURL, err = a.ArchiveFile("fs2.sim:80", "/codes/getimage.easl", bytes.NewReader([]byte(demoGetImage)))
	if err != nil {
		d.Close()
		return nil, err
	}
	if _, err := a.DB.Exec(fmt.Sprintf(
		`INSERT INTO CODE_FILE VALUES ('GetImage.easl', 'S19990110150932', 'EASL', 'Slice renderer', DLVALUE('%s'))`,
		d.CodeURL)); err != nil {
		d.Close()
		return nil, err
	}
	spec, err := a.GenerateXUIS("TURBULENCE")
	if err != nil {
		d.Close()
		return nil, err
	}
	if err := spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", DemoOperation()); err != nil {
		d.Close()
		return nil, err
	}
	if err := spec.SetUpload("RESULT_FILE", "DOWNLOAD_RESULT", &xuis.Upload{
		Type: "EASL", Format: "easl", GuestAccess: false,
	}); err != nil {
		d.Close()
		return nil, err
	}
	if err := a.SetSpec(spec); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

// DemoOperation is the XUIS markup for the archived GetImage code —
// the paper's operation fragment rebuilt against this schema.
func DemoOperation() *xuis.Operation {
	return &xuis.Operation{
		Name: "GetImage", Type: "EASL", Filename: "getimage.easl", Format: "easl", GuestAccess: true,
		Location: &xuis.Location{DatabaseResult: &xuis.DatabaseResult{
			ColID:      "CODE_FILE.DOWNLOAD_CODE_FILE",
			Conditions: []xuis.Condition{{ColID: "CODE_FILE.CODE_NAME", Eq: "'GetImage.easl'"}},
		}},
		Description: "Visualise one slice of the dataset",
		Parameters: &xuis.Parameters{Params: []xuis.Param{
			{Variable: xuis.Variable{
				Description: "Select the slice you wish to visualise:",
				Select: &xuis.Select{Name: "slice", Size: 3, Options: []xuis.Option{
					{Value: "x", Label: "x plane"}, {Value: "y", Label: "y plane"}, {Value: "z", Label: "z plane"},
				}},
			}},
			{Variable: xuis.Variable{
				Description: "Select velocity component or pressure:",
				Inputs: []xuis.Input{
					{Type: "radio", Name: "type", Value: "u", Label: "u speed"},
					{Type: "radio", Name: "type", Value: "v", Label: "v speed"},
					{Type: "radio", Name: "type", Value: "w", Label: "w speed"},
					{Type: "radio", Name: "type", Value: "p", Label: "pressure"},
				},
			}},
		}},
	}
}

// RunDemoOperation executes the archived GetImage against the demo row.
func (d *DemoArchive) RunDemoOperation(axis string) (int64, error) {
	res, err := d.Archive.RunOperation("GetImage", "RESULT_FILE.DOWNLOAD_RESULT", "RESULT_FILE",
		map[string]string{"FILE_NAME": "ts4.tsf", "SIMULATION_KEY": "S19990110150932"},
		map[string]string{"slice": axis, "type": "u"},
		core.User{Name: "bench"})
	if err != nil {
		return 0, err
	}
	return res.TotalOutputBytes(), nil
}

// drainAndClose is a small helper shared by experiments.
func drainAndClose(rc io.ReadCloser) (int64, error) {
	defer rc.Close()
	return io.Copy(io.Discard, rc)
}

// fmtBytes renders byte counts the way the reports do.
func fmtBytes(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.2f GB", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.2f MB", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.2f KB", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d B", n)
	}
}
