package exp

import (
	"strings"
	"testing"

	"repro/internal/netsim"
)

// TestE1MatchesPaperExactly: every cell of the published table.
func TestE1MatchesPaperExactly(t *testing.T) {
	r := E1BandwidthTable()
	for _, cell := range []string{
		"0.25 Mbit/s", "45m20s", "4h50m08s",
		"0.37 Mbit/s", "30m38s", "3h16m02s",
		"0.58 Mbit/s", "19m32s", "2h05m03s",
		"1.94 Mbit/s", "5m51s", "37m23s",
	} {
		if !strings.Contains(r.Text, cell) {
			t.Errorf("E1 missing %q:\n%s", cell, r.Text)
		}
	}
}

// TestE2Shape: EASIA must win on both bytes (≥11x for 100T+10R) and
// time, and the saving factor must equal (T+R)/R.
func TestE2Shape(t *testing.T) {
	r := E2CentralVsDistributed(netsim.SmallSimulationBytes, 100, 10, netsim.Day)
	if r.EASIAWANBytes >= r.CentralWANBytes {
		t.Fatalf("distributed moved more bytes: %d vs %d", r.EASIAWANBytes, r.CentralWANBytes)
	}
	if want := 11.0; r.BytesSavedFactor != want {
		t.Fatalf("saving factor = %.2f, want %.2f", r.BytesSavedFactor, want)
	}
	if r.EASIATime >= r.CentralTime {
		t.Fatalf("distributed slower: %v vs %v", r.EASIATime, r.CentralTime)
	}
	// The upload leg dominates because To-Southampton is the slow
	// direction: the centralised total must exceed 100 uploads alone.
	uploadOnly := 100 * netsim.TransferTimeExact(netsim.SmallSimulationBytes,
		netsim.SuperJANET1999.Rate(netsim.Day, netsim.ToArchive))
	if r.CentralTime <= uploadOnly {
		t.Fatalf("central time %v not dominated by uploads %v", r.CentralTime, uploadOnly)
	}
}

// TestE3Shape: reduction grows with N and the measured (real-run) sizes
// agree with the arithmetic within the PGM header.
func TestE3Shape(t *testing.T) {
	rows, err := E3DataReduction(t, 24, []int{16, 24, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Reduction <= rows[i-1].Reduction {
			t.Fatalf("reduction not increasing: %v", rows)
		}
	}
	// Measured rows (N≤24) carry a real PGM: header + N².
	for _, r := range rows[:2] {
		min := int64(r.N) * int64(r.N)
		if r.OutputBytes < min || r.OutputBytes > min+64 {
			t.Fatalf("N=%d measured output %d implausible", r.N, r.OutputBytes)
		}
	}
	// Reduction ≈ 16N: the cube is 16N³ bytes (4 fields × 4-byte floats),
	// the PGM image ≈ N² bytes (1 byte per pixel).
	last := rows[len(rows)-1]
	if last.Reduction < 14*float64(last.N) || last.Reduction > 18*float64(last.N) {
		t.Fatalf("N=%d reduction %.1f not ≈16N", last.N, last.Reduction)
	}
}

// TestE4Shape: makespan halves with each server doubling until servers
// stop being the bottleneck.
func TestE4Shape(t *testing.T) {
	rows := E4ServerScaling(16, []int{1, 2, 4, 8, 16}, netsim.SmallSimulationBytes)
	for i := 1; i < len(rows); i++ {
		if rows[i].Makespan >= rows[i-1].Makespan {
			t.Fatalf("makespan not improving at %d servers", rows[i].Servers)
		}
	}
	if rows[1].Speedup < 1.9 || rows[1].Speedup > 2.1 {
		t.Fatalf("2-server speedup = %.2f, want ≈2", rows[1].Speedup)
	}
	if rows[4].Speedup < 15 {
		t.Fatalf("16-server speedup = %.2f, want ≈16", rows[4].Speedup)
	}
}

// TestE5Shape: real parallel post-processing gets faster with hosts (we
// only require improvement from 1 to the best, since CI machines vary).
func TestE5Shape(t *testing.T) {
	rows := E5ParallelOps(32, 16, []int{1, 4})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Elapsed >= rows[0].Elapsed {
		t.Logf("warning: no parallel speedup on this machine: %v vs %v", rows[1].Elapsed, rows[0].Elapsed)
	}
}

func TestE6Narrative(t *testing.T) {
	r, err := E6EndToEnd(t)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"linked files on fs1: 1",
		"QBE search over metadata:         1 row(s)",
		"FK browse to author:              Papiani",
		"DATALINK download via token",
		"reduction)",
	} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("E6 missing %q:\n%s", want, r.Text)
		}
	}
}

func TestE7SchemaAndXUIS(t *testing.T) {
	r, err := E7Report(t)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"AUTHOR", "SIMULATION", "RESULT_FILE", "CODE_FILE", "VISUALISATION_FILE",
		"fk(AUTHOR_KEY)->AUTHOR",
		`<refby tablecolumn="SIMULATION.AUTHOR_KEY">`,
	} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("E7 missing %q", want)
		}
	}
}

func TestE8UIChecklist(t *testing.T) {
	r, err := E8Report(t)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(r.Text, "MISSING") {
		t.Fatalf("UI feature missing:\n%s", r.Text)
	}
}

func TestE9Fragments(t *testing.T) {
	r, err := E9Report()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`<operation name="GetImage"`,
		`<URL>http://quagga.ecs.soton.ac.uk:8080/servlet/SDBservlet</URL>`,
		`<upload type="EASL"`,
		`<eq>&#39;u,v,w,p&#39;</eq>`,
	} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("E9 missing %q", want)
		}
	}
}

func TestE10TokenLifecycle(t *testing.T) {
	res, err := E10Tokens()
	if err != nil {
		t.Fatal(err)
	}
	if res.MintPerSec <= 0 || res.ValidatePerSec <= 0 {
		t.Fatalf("rates: %+v", res)
	}
	joined := strings.Join(res.ExpirySweep, "\n")
	if !strings.Contains(joined, "age 0s") || !strings.Contains(joined, "EXPIRED") {
		t.Fatalf("sweep wrong:\n%s", joined)
	}
	// Exactly the >lifetime ages expire.
	expired := strings.Count(joined, "EXPIRED")
	if expired != 2 {
		t.Fatalf("expired %d entries, want 2:\n%s", expired, joined)
	}
}

func TestE11Sandbox(t *testing.T) {
	r, err := E11Report(t)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"post-processing complete",
		"easl-run --sandbox",
		"absolute path write",
		"infinite loop",
	} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("E11 missing %q:\n%s", want, r.Text)
		}
	}
	if strings.Count(r.Text, "refused") < 4 {
		t.Fatalf("not all hostile codes refused:\n%s", r.Text)
	}
}

func TestE12Guarantees(t *testing.T) {
	r, err := E12Report(t)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"delete linked file      -> refused",
		"rename linked file      -> refused",
		"insert w/ missing file  -> refused",
		"tokenless read          -> refused",
		"no link state leaked",
		"accepted (no existence check)",
		"dangling link reached the user",
	} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("E12 missing %q:\n%s", want, r.Text)
		}
	}
}

// TestAll: the full suite runs end to end (the easiabench path).
func TestAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite is slow")
	}
	reports, err := All(t)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"}
	if len(reports) != len(want) {
		t.Fatalf("reports = %d, want %d", len(reports), len(want))
	}
	for i, id := range want {
		if reports[i].ID != id {
			t.Errorf("report %d = %s, want %s", i, reports[i].ID, id)
		}
		if reports[i].Text == "" {
			t.Errorf("report %s empty", id)
		}
	}
}
