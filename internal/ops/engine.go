// Package ops implements EASIA's server-side post-processing engine:
// the paper's "operations". Post-processing codes are themselves
// archived via DATALINKs and loosely coupled to datasets through
// <operation> markup in the XUIS; the engine resolves which operations
// apply to a result row, generates their parameter forms, fetches and
// unpacks the code package, and executes it in a sandbox next to the
// data — returning the (much smaller) derived product instead of the
// raw dataset. It also implements URL operations (external services
// spliced in via XUIS, the paper's NCSA SDB example), authorised code
// upload, and the paper's future-work items: operation result caching
// and execution statistics.
package ops

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/script"
	"repro/internal/sqldb"
	"repro/internal/sqltypes"
	"repro/internal/xuis"
)

// User carries the identity and privilege bits the engine checks. The
// demo policy from the paper: guests cannot download datasets, cannot
// upload codes, and only run operations marked guest.access="true".
type User struct {
	Name  string
	Guest bool
}

// Config wires an Engine to its surroundings.
type Config struct {
	DB   *sqldb.DB
	Spec *xuis.Spec
	// Fetch returns the content of a DATALINK URL. The archive core
	// wires this to the file-server stores; on a real deployment the
	// engine runs on the file-server host, so fetches are local reads.
	Fetch func(url string) (io.ReadCloser, error)
	// WorkRoot hosts the per-invocation temporary directories (the
	// paper's batch files unpack and chdir into these).
	WorkRoot string
	// Limits bounds sandboxed execution; zero selects defaults.
	Limits script.Limits
	// HTTPClient serves URL operations; nil means http.DefaultClient.
	HTTPClient *http.Client
	// CacheResults enables the result cache (paper future work).
	CacheResults bool
	Clock        func() time.Time
}

// Engine executes operations and uploaded codes.
type Engine struct {
	cfg   Config
	mu    sync.Mutex
	seq   int
	cache map[string]*Result
	stats map[string]*OpStats
}

// OutputFile is one artefact an operation produced.
type OutputFile struct {
	Name string
	Data []byte
}

// Result is the outcome of an operation run.
type Result struct {
	Operation string
	Stdout    string
	Files     []OutputFile
	// BatchPlan is the generated script of steps the engine performed —
	// the reproduction of the paper's dynamically created batch file
	// (chdir to temp dir, unpack, invoke interpreter).
	BatchPlan string
	Elapsed   time.Duration
	Steps     int64
	FromCache bool
}

// TotalOutputBytes sums the produced artefacts — what actually crosses
// the network back to the user instead of the dataset.
func (r *Result) TotalOutputBytes() int64 {
	n := int64(len(r.Stdout))
	for _, f := range r.Files {
		n += int64(len(f.Data))
	}
	return n
}

// OpStats aggregates executions of one operation (paper future work:
// "store operation statistics (execution time, output details) for
// benefit of future users").
type OpStats struct {
	Runs        int
	CacheHits   int
	TotalTime   time.Duration
	TotalOutput int64
	LastRun     time.Time
}

// NewEngine validates the configuration and returns an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.DB == nil || cfg.Spec == nil {
		return nil, fmt.Errorf("ops: Config.DB and Config.Spec are required")
	}
	if cfg.Fetch == nil {
		return nil, fmt.Errorf("ops: Config.Fetch is required")
	}
	if cfg.WorkRoot == "" {
		return nil, fmt.Errorf("ops: Config.WorkRoot is required")
	}
	if err := os.MkdirAll(cfg.WorkRoot, 0o755); err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	return &Engine{cfg: cfg, cache: map[string]*Result{}, stats: map[string]*OpStats{}}, nil
}

// SetCaching toggles the result cache at runtime (ablation benches).
func (e *Engine) SetCaching(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.CacheResults = on
	if !on {
		e.cache = map[string]*Result{}
	}
}

// Stats returns a copy of the recorded per-operation statistics.
func (e *Engine) Stats() map[string]OpStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]OpStats, len(e.stats))
	for k, v := range e.stats {
		out[k] = *v
	}
	return out
}

// Applicable returns the operations on the given column that apply to
// the row (conditions satisfied) and are visible to the user.
func (e *Engine) Applicable(colID string, row map[string]sqltypes.Value, u User) []*xuis.Operation {
	col := e.findColumn(colID)
	if col == nil {
		return nil
	}
	var out []*xuis.Operation
	for _, op := range col.Operations {
		if u.Guest && !op.GuestAccess {
			continue
		}
		if !conditionsMatch(op.If, row) {
			continue
		}
		out = append(out, op)
	}
	return out
}

// CanUpload reports whether the user may upload code against this row's
// DATALINK column.
func (e *Engine) CanUpload(colID string, row map[string]sqltypes.Value, u User) bool {
	col := e.findColumn(colID)
	if col == nil || col.Upload == nil {
		return false
	}
	if u.Guest && !col.Upload.GuestAccess {
		return false
	}
	return conditionsMatch(col.Upload.If, row)
}

func (e *Engine) findColumn(colID string) *xuis.Column {
	table, column, err := xuis.SplitColID(colID)
	if err != nil {
		return nil
	}
	t, ok := e.cfg.Spec.Table(table)
	if !ok {
		return nil
	}
	c, ok := t.Column(column)
	if !ok {
		return nil
	}
	return c
}

// conditionsMatch evaluates <if> conditions against a row.
func conditionsMatch(ifSpec *xuis.IfSpec, row map[string]sqltypes.Value) bool {
	if ifSpec == nil {
		return true
	}
	for _, cond := range ifSpec.Conditions {
		v, ok := row[strings.ToUpper(cond.ColID)]
		if !ok {
			return false
		}
		if v.IsNull() || v.AsString() != cond.Value() {
			return false
		}
	}
	return true
}

// Run executes a named operation bound to colID against the dataset the
// row's DATALINK points at.
func (e *Engine) Run(opName, colID string, row map[string]sqltypes.Value, params map[string]string, u User) (*Result, error) {
	col := e.findColumn(colID)
	if col == nil {
		return nil, fmt.Errorf("ops: unknown column %s", colID)
	}
	var op *xuis.Operation
	for _, candidate := range col.Operations {
		if candidate.Name == opName {
			op = candidate
			break
		}
	}
	if op == nil {
		return nil, fmt.Errorf("ops: no operation %s on %s", opName, colID)
	}
	if u.Guest && !op.GuestAccess {
		return nil, fmt.Errorf("ops: operation %s is not available to guest users", opName)
	}
	if !conditionsMatch(op.If, row) {
		return nil, fmt.Errorf("ops: operation %s does not apply to this row", opName)
	}
	datasetURL, err := datalinkFromRow(row, colID)
	if err != nil {
		return nil, err
	}

	cacheKey := cacheKeyFor(opName, datasetURL, params)
	e.mu.Lock()
	if e.cfg.CacheResults {
		if cached, ok := e.cache[cacheKey]; ok {
			st := e.statLocked(opName)
			st.Runs++
			st.CacheHits++
			st.LastRun = e.cfg.Clock()
			e.mu.Unlock()
			out := *cached
			out.FromCache = true
			return &out, nil
		}
	}
	e.mu.Unlock()

	start := e.cfg.Clock()
	var res *Result
	if op.Location != nil && op.Location.URL != "" {
		res, err = e.runURLOperation(op, datasetURL, params)
	} else {
		res, err = e.runPackagedOperation(op, datasetURL, params, u)
	}
	if err != nil {
		return nil, err
	}
	res.Operation = opName
	res.Elapsed = e.cfg.Clock().Sub(start)

	e.mu.Lock()
	st := e.statLocked(opName)
	st.Runs++
	st.TotalTime += res.Elapsed
	st.TotalOutput += res.TotalOutputBytes()
	st.LastRun = e.cfg.Clock()
	if e.cfg.CacheResults {
		e.cache[cacheKey] = res
	}
	e.mu.Unlock()
	return res, nil
}

func (e *Engine) statLocked(op string) *OpStats {
	st, ok := e.stats[op]
	if !ok {
		st = &OpStats{}
		e.stats[op] = st
	}
	return st
}

func cacheKeyFor(op, dataset string, params map[string]string) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(op)
	b.WriteByte('|')
	b.WriteString(dataset)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, params[k])
	}
	return b.String()
}

func datalinkFromRow(row map[string]sqltypes.Value, colID string) (string, error) {
	v, ok := row[strings.ToUpper(colID)]
	if !ok || v.IsNull() {
		return "", fmt.Errorf("ops: row has no DATALINK value in %s", colID)
	}
	if v.Kind() != sqltypes.KindDatalink {
		return "", fmt.Errorf("ops: column %s holds %s, not DATALINK", colID, v.Kind())
	}
	return v.Str(), nil
}

// resolveCode locates and fetches the operation's code package: a
// SELECT over the DATALINK column named in <database.result>, filtered
// by its conditions, then a fetch of the linked file.
func (e *Engine) resolveCode(op *xuis.Operation) ([]byte, error) {
	loc := op.Location
	if loc == nil || loc.DatabaseResult == nil {
		return nil, fmt.Errorf("ops: operation %s has no database.result location", op.Name)
	}
	dr := loc.DatabaseResult
	table, column, err := xuis.SplitColID(dr.ColID)
	if err != nil {
		return nil, err
	}
	sql := fmt.Sprintf("SELECT %s FROM %s", column, table)
	var args []sqltypes.Value
	if len(dr.Conditions) > 0 {
		var conds []string
		for _, c := range dr.Conditions {
			_, ccol, err := xuis.SplitColID(c.ColID)
			if err != nil {
				return nil, err
			}
			conds = append(conds, fmt.Sprintf("%s = ?", ccol))
			args = append(args, sqltypes.NewString(c.Value()))
		}
		sql += " WHERE " + strings.Join(conds, " AND ")
	}
	rows, err := e.cfg.DB.Query(sql, args...)
	if err != nil {
		return nil, fmt.Errorf("ops: resolving code for %s: %w", op.Name, err)
	}
	if len(rows.Data) == 0 {
		return nil, fmt.Errorf("ops: no archived code matches operation %s", op.Name)
	}
	if len(rows.Data) > 1 {
		return nil, fmt.Errorf("ops: code location for %s is ambiguous (%d rows)", op.Name, len(rows.Data))
	}
	codeURL := rows.Data[0][0]
	if codeURL.IsNull() || codeURL.Kind() != sqltypes.KindDatalink {
		return nil, fmt.Errorf("ops: code location for %s is not a DATALINK", op.Name)
	}
	rc, err := e.cfg.Fetch(codeURL.Str())
	if err != nil {
		return nil, fmt.Errorf("ops: fetching code %s: %w", codeURL.Str(), err)
	}
	defer rc.Close()
	return io.ReadAll(rc)
}

// newWorkDir creates the per-invocation temporary directory, named from
// the user and timestamp like the paper's servlet-session directories.
func (e *Engine) newWorkDir(user string) (string, error) {
	e.mu.Lock()
	e.seq++
	seq := e.seq
	e.mu.Unlock()
	name := fmt.Sprintf("op-%s-%s-%04d", sanitize(user), e.cfg.Clock().Format("20060102T150405"), seq)
	dir := filepath.Join(e.cfg.WorkRoot, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return dir, nil
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "anon"
	}
	return string(out)
}
