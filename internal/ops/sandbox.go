package ops

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/script"
	"repro/internal/sqltypes"
	"repro/internal/turb"
	"repro/internal/xuis"
)

// runPackagedOperation is the paper's batch-file mechanism, step for
// step: create a unique temporary directory, unpack the code package
// into it, change into it, fetch the dataset next to it, and invoke a
// second, security-restricted interpreter on the entry file with the
// dataset filename as its argument. The generated plan is recorded in
// Result.BatchPlan.
func (e *Engine) runPackagedOperation(op *xuis.Operation, datasetURL string, params map[string]string, u User) (*Result, error) {
	code, err := e.resolveCode(op)
	if err != nil {
		return nil, err
	}
	workdir, err := e.newWorkDir(u.Name)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(workdir)

	var plan strings.Builder
	fmt.Fprintf(&plan, "mkdir %s\n", workdir)
	fmt.Fprintf(&plan, "cd %s\n", workdir)

	entry := op.Filename
	if entry == "" {
		entry = op.Name + ".easl"
	}
	names, err := unpackPackage(code, op.Format, entry, workdir)
	if err != nil {
		return nil, fmt.Errorf("ops: unpacking %s package for %s: %w", op.Format, op.Name, err)
	}
	fmt.Fprintf(&plan, "unpack %s package (%d file(s): %s)\n", packFormat(op.Format), len(names), strings.Join(names, ", "))

	datasetFile, err := e.fetchDataset(datasetURL, workdir)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&plan, "fetch dataset %s -> %s\n", datasetURL, datasetFile)
	fmt.Fprintf(&plan, "easl-run --sandbox %s %s\n", entry, datasetFile)

	res, err := e.executeEASL(workdir, entry, datasetFile, params)
	if err != nil {
		return nil, err
	}
	res.BatchPlan = plan.String()
	return res, nil
}

// runPackagedOnBytes runs a packaged operation against in-memory
// dataset bytes instead of an archived DATALINK — the chained-operation
// path, where the dataset is the previous stage's output and never had
// a URL.
func (e *Engine) runPackagedOnBytes(op *xuis.Operation, datasetName string, dataset []byte, params map[string]string, u User) (*Result, error) {
	code, err := e.resolveCode(op)
	if err != nil {
		return nil, err
	}
	workdir, err := e.newWorkDir(u.Name)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(workdir)

	var plan strings.Builder
	fmt.Fprintf(&plan, "mkdir %s\n", workdir)
	fmt.Fprintf(&plan, "cd %s\n", workdir)
	entry := op.Filename
	if entry == "" {
		entry = op.Name + ".easl"
	}
	names, err := unpackPackage(code, op.Format, entry, workdir)
	if err != nil {
		return nil, fmt.Errorf("ops: unpacking %s package for %s: %w", op.Format, op.Name, err)
	}
	fmt.Fprintf(&plan, "unpack %s package (%d file(s): %s)\n", packFormat(op.Format), len(names), strings.Join(names, ", "))
	if err := writeConfined(workdir, datasetName, dataset); err != nil {
		return nil, err
	}
	fmt.Fprintf(&plan, "stage chained intermediate -> %s\n", datasetName)
	fmt.Fprintf(&plan, "easl-run --sandbox %s %s\n", entry, datasetName)

	res, err := e.executeEASL(workdir, entry, datasetName, params)
	if err != nil {
		return nil, err
	}
	res.BatchPlan = plan.String()
	return res, nil
}

// RunUploaded executes user-supplied code against the row's dataset,
// subject to the column's <upload> policy. This is the paper's "code
// upload for secure server-side execution".
func (e *Engine) RunUploaded(colID string, row map[string]sqltypes.Value, code []byte, format, entry string, params map[string]string, u User) (*Result, error) {
	col := e.findColumn(colID)
	if col == nil {
		return nil, fmt.Errorf("ops: unknown column %s", colID)
	}
	if col.Upload == nil {
		return nil, fmt.Errorf("ops: column %s does not accept code upload", colID)
	}
	if u.Guest && !col.Upload.GuestAccess {
		return nil, fmt.Errorf("ops: guest users may not upload code")
	}
	if !conditionsMatch(col.Upload.If, row) {
		return nil, fmt.Errorf("ops: code upload is not allowed against this row")
	}
	datasetURL, err := datalinkFromRow(row, colID)
	if err != nil {
		return nil, err
	}
	workdir, err := e.newWorkDir(u.Name)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(workdir)

	var plan strings.Builder
	fmt.Fprintf(&plan, "mkdir %s\n", workdir)
	fmt.Fprintf(&plan, "cd %s\n", workdir)
	names, err := unpackPackage(code, format, entry, workdir)
	if err != nil {
		return nil, fmt.Errorf("ops: unpacking uploaded %s package: %w", format, err)
	}
	fmt.Fprintf(&plan, "unpack uploaded %s package (%d file(s): %s)\n", packFormat(format), len(names), strings.Join(names, ", "))
	datasetFile, err := e.fetchDataset(datasetURL, workdir)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&plan, "fetch dataset %s -> %s\n", datasetURL, datasetFile)
	fmt.Fprintf(&plan, "easl-run --sandbox %s %s\n", entry, datasetFile)

	res, err := e.executeEASL(workdir, entry, datasetFile, params)
	if err != nil {
		return nil, err
	}
	res.Operation = "upload:" + entry
	res.BatchPlan = plan.String()
	e.mu.Lock()
	st := e.statLocked(res.Operation)
	st.Runs++
	st.TotalTime += res.Elapsed
	st.TotalOutput += res.TotalOutputBytes()
	st.LastRun = e.cfg.Clock()
	e.mu.Unlock()
	return res, nil
}

// fetchDataset copies the dataset beside the code (on a real deployment
// the engine runs on the file-server host, so this is a local read).
func (e *Engine) fetchDataset(url, workdir string) (string, error) {
	rc, err := e.cfg.Fetch(url)
	if err != nil {
		return "", fmt.Errorf("ops: fetching dataset %s: %w", url, err)
	}
	defer rc.Close()
	u, err := sqltypes.ParseDatalinkURL(url)
	if err != nil {
		return "", err
	}
	name := u.File()
	dst := filepath.Join(workdir, name)
	f, err := os.Create(dst)
	if err != nil {
		return "", err
	}
	if _, err := io.Copy(f, rc); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return name, nil
}

// executeEASL runs the entry file under the sandbox with the dataset
// capabilities bound to the working directory.
func (e *Engine) executeEASL(workdir, entry, datasetFile string, params map[string]string) (*Result, error) {
	srcBytes, err := os.ReadFile(filepath.Join(workdir, filepath.FromSlash(entry)))
	if err != nil {
		return nil, fmt.Errorf("ops: entry file %s missing from package", entry)
	}
	prog, err := script.Parse(string(srcBytes))
	if err != nil {
		return nil, err
	}
	// Snapshot the workdir (package contents + dataset) so only files
	// the run creates are reported as outputs.
	preExisting := map[string]bool{}
	err = filepath.Walk(workdir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(workdir, path)
		if err != nil {
			return err
		}
		preExisting[filepath.ToSlash(rel)] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	in := script.New(e.cfg.Limits, hostFuncs(workdir))
	// The paper: "the only restriction is that the initial executable
	// file accepts a filename as a command line parameter".
	in.SetGlobal("filename", datasetFile)
	paramMap := &script.Map{Entries: map[string]script.Value{}}
	for k, v := range params {
		paramMap.Entries[k] = v
	}
	in.SetGlobal("params", paramMap)

	if _, err := in.Run(prog); err != nil {
		return nil, fmt.Errorf("ops: execution failed: %w", err)
	}
	res := &Result{Stdout: in.Output(), Steps: in.Steps()}

	// Collect every file the run created.
	err = filepath.Walk(workdir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(workdir, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if preExisting[rel] {
			return nil
		}
		if info.Size() > 64<<20 {
			return fmt.Errorf("ops: output file %s exceeds 64 MiB", rel)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		res.Files = append(res.Files, OutputFile{Name: rel, Data: data})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(res.Files, func(i, j int) bool { return res.Files[i].Name < res.Files[j].Name })
	return res, nil
}

// hostFuncs builds the capability set for one sandboxed run: dataset
// readers (streaming slices out of TSF files) and file writers confined
// to the working directory — the reproduction of the paper's security
// restrictions ("code must write output to relative filenames").
func hostFuncs(workdir string) map[string]script.HostFunc {
	confine := func(name string) (string, error) {
		if name == "" || strings.HasPrefix(name, "/") || strings.Contains(name, "..") ||
			strings.ContainsAny(name, "\\\x00") {
			return "", fmt.Errorf("ops: path %q escapes the sandbox (relative filenames only)", name)
		}
		return filepath.Join(workdir, filepath.FromSlash(name)), nil
	}
	openDataset := func(name string) (*os.File, error) {
		p, err := confine(name)
		if err != nil {
			return nil, err
		}
		return os.Open(p)
	}
	str := func(v script.Value, what string) (string, error) {
		s, ok := v.(string)
		if !ok {
			return "", fmt.Errorf("ops: %s must be a string", what)
		}
		return s, nil
	}
	num := func(v script.Value, what string) (float64, error) {
		f, ok := v.(float64)
		if !ok {
			return 0, fmt.Errorf("ops: %s must be a number", what)
		}
		return f, nil
	}
	sliceArgs := func(args []script.Value) (*os.File, string, turb.Axis, int, error) {
		if len(args) != 4 {
			return nil, "", 0, 0, fmt.Errorf("ops: want (filename, field, axis, index)")
		}
		name, err := str(args[0], "filename")
		if err != nil {
			return nil, "", 0, 0, err
		}
		field, err := str(args[1], "field")
		if err != nil {
			return nil, "", 0, 0, err
		}
		axisStr, err := str(args[2], "axis")
		if err != nil {
			return nil, "", 0, 0, err
		}
		axis, err := turb.ParseAxis(axisStr)
		if err != nil {
			return nil, "", 0, 0, err
		}
		idxF, err := num(args[3], "index")
		if err != nil {
			return nil, "", 0, 0, err
		}
		f, err := openDataset(name)
		if err != nil {
			return nil, "", 0, 0, err
		}
		return f, field, axis, int(idxF), nil
	}

	return map[string]script.HostFunc{
		// datasetInfo(filename) -> {n, step, time, reynolds, bytes}
		"datasetInfo": func(in *script.Interp, args []script.Value) (script.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("ops: datasetInfo(filename)")
			}
			name, err := str(args[0], "filename")
			if err != nil {
				return nil, err
			}
			f, err := openDataset(name)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			h, err := turb.ReadHeader(f)
			if err != nil {
				return nil, err
			}
			return &script.Map{Entries: map[string]script.Value{
				"n":        float64(h.N),
				"step":     float64(h.Step),
				"time":     h.Time,
				"reynolds": h.Reynolds,
				"bytes":    float64(turb.FileBytes(h.N)),
			}}, nil
		},
		// loadSlice(filename, field, axis, index) -> list of numbers
		"loadSlice": func(in *script.Interp, args []script.Value) (script.Value, error) {
			f, field, axis, idx, err := sliceArgs(args)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			sl, _, err := turb.SliceFromFile(f, field, axis, idx)
			if err != nil {
				return nil, err
			}
			out := &script.List{Elems: make([]script.Value, len(sl.Data))}
			for i, v := range sl.Data {
				out.Elems[i] = float64(v)
			}
			return out, nil
		},
		// sliceStats(filename, field, axis, index) -> {min,max,mean,rms,count}
		"sliceStats": func(in *script.Interp, args []script.Value) (script.Value, error) {
			f, field, axis, idx, err := sliceArgs(args)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			sl, _, err := turb.SliceFromFile(f, field, axis, idx)
			if err != nil {
				return nil, err
			}
			st := sl.Stats()
			return &script.Map{Entries: map[string]script.Value{
				"min": st.Min, "max": st.Max, "mean": st.Mean, "rms": st.RMS,
				"count": float64(st.Count),
			}}, nil
		},
		// writeImage(outname, filename, field, axis, index) -> bytes written
		"writeImage": func(in *script.Interp, args []script.Value) (script.Value, error) {
			if len(args) != 5 {
				return nil, fmt.Errorf("ops: writeImage(outname, filename, field, axis, index)")
			}
			outName, err := str(args[0], "outname")
			if err != nil {
				return nil, err
			}
			outPath, err := confine(outName)
			if err != nil {
				return nil, err
			}
			f, field, axis, idx, err := sliceArgs(args[1:])
			if err != nil {
				return nil, err
			}
			defer f.Close()
			sl, _, err := turb.SliceFromFile(f, field, axis, idx)
			if err != nil {
				return nil, err
			}
			var img []byte
			if strings.HasSuffix(outName, ".ppm") {
				img = sl.PPM()
			} else {
				img = sl.PGM()
			}
			if err := os.MkdirAll(filepath.Dir(outPath), 0o755); err != nil {
				return nil, err
			}
			if err := os.WriteFile(outPath, img, 0o644); err != nil {
				return nil, err
			}
			return float64(len(img)), nil
		},
		// readFile(name) -> content string (confined to the workdir,
		// capped at 8 MiB; lets chained stages consume intermediates)
		"readFile": func(in *script.Interp, args []script.Value) (script.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("ops: readFile(name)")
			}
			name, err := str(args[0], "name")
			if err != nil {
				return nil, err
			}
			p, err := confine(name)
			if err != nil {
				return nil, err
			}
			fi, err := os.Stat(p)
			if err != nil {
				return nil, fmt.Errorf("ops: readFile: %s not found", name)
			}
			if fi.Size() > 8<<20 {
				return nil, fmt.Errorf("ops: readFile: %s exceeds 8 MiB", name)
			}
			data, err := os.ReadFile(p)
			if err != nil {
				return nil, err
			}
			return string(data), nil
		},
		// writeFile(name, content) -> bytes written (relative paths only)
		"writeFile": func(in *script.Interp, args []script.Value) (script.Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("ops: writeFile(name, content)")
			}
			name, err := str(args[0], "name")
			if err != nil {
				return nil, err
			}
			p, err := confine(name)
			if err != nil {
				return nil, err
			}
			var content string
			switch c := args[1].(type) {
			case string:
				content = c
			default:
				return nil, fmt.Errorf("ops: writeFile content must be a string")
			}
			if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
				return nil, err
			}
			if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
				return nil, err
			}
			return float64(len(content)), nil
		},
	}
}

func packFormat(format string) string {
	if format == "" {
		return "plain"
	}
	return format
}
