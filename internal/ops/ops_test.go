package ops

import (
	"archive/tar"
	"archive/zip"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/script"
	"repro/internal/sqldb"
	"repro/internal/sqltypes"
	"repro/internal/turb"
	"repro/internal/xuis"
)

// testEnv assembles a miniature archive: a metadata DB with RESULT_FILE
// and CODE_FILE tables, a local "file server" directory with a real TSF
// dataset and an EASL code package, and an engine wired to them.
type testEnv struct {
	db    *sqldb.DB
	spec  *xuis.Spec
	eng   *Engine
	files map[string][]byte // datalink URL → content
	row   map[string]sqltypes.Value
}

const (
	datasetURL = "http://fs1.sim:80/vol0/run1/ts4.tsf"
	codeURL    = "http://fs1.sim:80/codes/getimage.easl"
)

// getImageSrc is the EASL analogue of the paper's GetImage operation:
// slice the requested plane/component and write it as an image.
const getImageSrc = `
let axis = params["slice"]
let comp = params["type"]
if (axis == nil) { axis = "z" }
if (comp == nil) { comp = "u" }
let info = datasetInfo(filename)
let mid = floor(info.n / 2)
let bytes = writeImage("slice.pgm", filename, comp, axis, mid)
let st = sliceStats(filename, comp, axis, mid)
print("dataset:", filename, "n =", info.n)
print("slice", axis, "=", mid, "component", comp)
print("min", st.min, "max", st.max)
print("image bytes:", bytes)
`

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	db, err := sqldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ddl := `
CREATE TABLE SIMULATION (SIMULATION_KEY VARCHAR(30) PRIMARY KEY, TITLE VARCHAR(200));
CREATE TABLE RESULT_FILE (
  FILE_NAME VARCHAR(100),
  SIMULATION_KEY VARCHAR(30) REFERENCES SIMULATION (SIMULATION_KEY),
  MEASUREMENT VARCHAR(30),
  DOWNLOAD_RESULT DATALINK NO FILE LINK CONTROL,
  PRIMARY KEY (FILE_NAME, SIMULATION_KEY));
CREATE TABLE CODE_FILE (
  CODE_NAME VARCHAR(100) PRIMARY KEY,
  SIMULATION_KEY VARCHAR(30) REFERENCES SIMULATION (SIMULATION_KEY),
  DOWNLOAD_CODE_FILE DATALINK NO FILE LINK CONTROL);
`
	if err := db.ExecScript(ddl); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		`INSERT INTO SIMULATION VALUES ('S19990110150932', 'Channel flow')`,
		fmt.Sprintf(`INSERT INTO RESULT_FILE VALUES ('ts4.tsf', 'S19990110150932', 'u,v,w,p', DLVALUE('%s'))`, datasetURL),
		fmt.Sprintf(`INSERT INTO CODE_FILE VALUES ('GetImage.easl', 'S19990110150932', DLVALUE('%s'))`, codeURL),
	} {
		if _, err := db.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}

	spec, err := xuis.Generator{}.Generate(db, "TURBULENCE")
	if err != nil {
		t.Fatal(err)
	}
	op := &xuis.Operation{
		Name:        "GetImage",
		Type:        "EASL",
		Filename:    "getimage.easl",
		Format:      "easl",
		GuestAccess: true,
		If: &xuis.IfSpec{Conditions: []xuis.Condition{
			{ColID: "RESULT_FILE.SIMULATION_KEY", Eq: "'S19990110150932'"},
		}},
		Location: &xuis.Location{DatabaseResult: &xuis.DatabaseResult{
			ColID:      "CODE_FILE.DOWNLOAD_CODE_FILE",
			Conditions: []xuis.Condition{{ColID: "CODE_FILE.CODE_NAME", Eq: "'GetImage.easl'"}},
		}},
	}
	if err := spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", op); err != nil {
		t.Fatal(err)
	}
	if err := spec.SetUpload("RESULT_FILE", "DOWNLOAD_RESULT", &xuis.Upload{
		Type: "EASL", Format: "easl", GuestAccess: false,
		If: &xuis.IfSpec{Conditions: []xuis.Condition{
			{ColID: "RESULT_FILE.MEASUREMENT", Eq: "'u,v,w,p'"},
		}},
	}); err != nil {
		t.Fatal(err)
	}

	// Materialise the dataset and code "on the file server".
	var tsf bytes.Buffer
	if _, err := turb.Generate(12, 4, 7).WriteTo(&tsf); err != nil {
		t.Fatal(err)
	}
	env := &testEnv{
		db:   db,
		spec: spec,
		files: map[string][]byte{
			datasetURL: tsf.Bytes(),
			codeURL:    []byte(getImageSrc),
		},
	}
	eng, err := NewEngine(Config{
		DB:   db,
		Spec: spec,
		Fetch: func(url string) (io.ReadCloser, error) {
			data, ok := env.files[url]
			if !ok {
				return nil, fmt.Errorf("no such file %s", url)
			}
			return io.NopCloser(bytes.NewReader(data)), nil
		},
		WorkRoot: t.TempDir(),
		// Small budgets keep hostile-code tests fast.
		Limits: script.Limits{MaxSteps: 500_000, MaxHeap: 1 << 20, MaxOutput: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	env.eng = eng
	env.row = map[string]sqltypes.Value{
		"RESULT_FILE.FILE_NAME":       sqltypes.NewString("ts4.tsf"),
		"RESULT_FILE.SIMULATION_KEY":  sqltypes.NewString("S19990110150932"),
		"RESULT_FILE.MEASUREMENT":     sqltypes.NewString("u,v,w,p"),
		"RESULT_FILE.DOWNLOAD_RESULT": sqltypes.NewDatalink(datasetURL),
	}
	return env
}

func TestApplicableRespectsConditionsAndGuests(t *testing.T) {
	env := newTestEnv(t)
	ops := env.eng.Applicable("RESULT_FILE.DOWNLOAD_RESULT", env.row, User{Name: "guest", Guest: true})
	if len(ops) != 1 || ops[0].Name != "GetImage" {
		t.Fatalf("applicable = %v", ops)
	}
	// Row from another simulation: condition fails.
	otherRow := map[string]sqltypes.Value{
		"RESULT_FILE.SIMULATION_KEY":  sqltypes.NewString("S_OTHER"),
		"RESULT_FILE.DOWNLOAD_RESULT": sqltypes.NewDatalink(datasetURL),
	}
	if ops := env.eng.Applicable("RESULT_FILE.DOWNLOAD_RESULT", otherRow, User{}); len(ops) != 0 {
		t.Fatalf("condition not enforced: %v", ops)
	}
	// Guest-restricted operation disappears for guests.
	op2 := &xuis.Operation{
		Name: "AdminOnly", GuestAccess: false,
		Location: &xuis.Location{URL: "http://x/"},
	}
	if err := env.spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", op2); err != nil {
		t.Fatal(err)
	}
	guest := env.eng.Applicable("RESULT_FILE.DOWNLOAD_RESULT", env.row, User{Guest: true})
	full := env.eng.Applicable("RESULT_FILE.DOWNLOAD_RESULT", env.row, User{})
	if len(guest) != 1 || len(full) != 2 {
		t.Fatalf("guest=%d full=%d", len(guest), len(full))
	}
}

func TestRunGetImageOperation(t *testing.T) {
	env := newTestEnv(t)
	res, err := env.eng.Run("GetImage", "RESULT_FILE.DOWNLOAD_RESULT", env.row,
		map[string]string{"slice": "z", "type": "u"}, User{Name: "guest", Guest: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 1 || res.Files[0].Name != "slice.pgm" {
		t.Fatalf("files = %v", fileNames(res.Files))
	}
	if !bytes.HasPrefix(res.Files[0].Data, []byte("P5\n12 12\n255\n")) {
		t.Fatalf("not a PGM: %q", res.Files[0].Data[:16])
	}
	if !strings.Contains(res.Stdout, "slice z = 6 component u") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	// The batch plan reproduces the paper's mechanism.
	for _, want := range []string{"mkdir", "cd ", "unpack", "fetch dataset", "easl-run --sandbox"} {
		if !strings.Contains(res.BatchPlan, want) {
			t.Errorf("batch plan missing %q:\n%s", want, res.BatchPlan)
		}
	}
	// Data reduction: the image is far smaller than the dataset.
	if res.TotalOutputBytes() >= turb.FileBytes(12) {
		t.Fatalf("no reduction: output %d >= dataset %d", res.TotalOutputBytes(), turb.FileBytes(12))
	}
	if res.Steps <= 0 || res.Elapsed < 0 {
		t.Fatalf("stats not recorded: steps=%d elapsed=%v", res.Steps, res.Elapsed)
	}
}

func TestRunUnknownAndMisbound(t *testing.T) {
	env := newTestEnv(t)
	if _, err := env.eng.Run("Nope", "RESULT_FILE.DOWNLOAD_RESULT", env.row, nil, User{}); err == nil {
		t.Fatal("unknown operation ran")
	}
	if _, err := env.eng.Run("GetImage", "RESULT_FILE.MEASUREMENT", env.row, nil, User{}); err == nil {
		t.Fatal("operation on wrong column ran")
	}
	badRow := map[string]sqltypes.Value{
		"RESULT_FILE.SIMULATION_KEY": sqltypes.NewString("S_OTHER"),
	}
	if _, err := env.eng.Run("GetImage", "RESULT_FILE.DOWNLOAD_RESULT", badRow, nil, User{}); err == nil {
		t.Fatal("operation ran despite failed condition")
	}
}

func TestOperationStatsAndCache(t *testing.T) {
	env := newTestEnv(t)
	env.eng.SetCaching(true)
	params := map[string]string{"slice": "z", "type": "p"}
	r1, err := env.eng.Run("GetImage", "RESULT_FILE.DOWNLOAD_RESULT", env.row, params, User{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.FromCache {
		t.Fatal("first run claimed cache hit")
	}
	r2, err := env.eng.Run("GetImage", "RESULT_FILE.DOWNLOAD_RESULT", env.row, params, User{})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.FromCache {
		t.Fatal("second run missed cache")
	}
	// Different params: miss.
	r3, err := env.eng.Run("GetImage", "RESULT_FILE.DOWNLOAD_RESULT", env.row,
		map[string]string{"slice": "y", "type": "p"}, User{})
	if err != nil {
		t.Fatal(err)
	}
	if r3.FromCache {
		t.Fatal("different params hit cache")
	}
	st := env.eng.Stats()["GetImage"]
	if st.Runs != 3 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUploadPolicyAndExecution(t *testing.T) {
	env := newTestEnv(t)
	code := []byte(`
let st = sliceStats(filename, "p", "z", 3)
writeFile("stats.txt", "rms=" + str(st.rms))
print("done")
`)
	// Guests may not upload (guest.access="false" in the XUIS).
	if _, err := env.eng.RunUploaded("RESULT_FILE.DOWNLOAD_RESULT", env.row, code, "easl", "user.easl", nil,
		User{Name: "guest", Guest: true}); err == nil {
		t.Fatal("guest upload ran")
	}
	// Authorised user may.
	res, err := env.eng.RunUploaded("RESULT_FILE.DOWNLOAD_RESULT", env.row, code, "easl", "user.easl", nil,
		User{Name: "papiani"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 1 || res.Files[0].Name != "stats.txt" {
		t.Fatalf("files = %v", fileNames(res.Files))
	}
	if !strings.HasPrefix(string(res.Files[0].Data), "rms=") {
		t.Fatalf("stats content: %q", res.Files[0].Data)
	}
	// Condition mismatch (different MEASUREMENT) blocks upload.
	row2 := map[string]sqltypes.Value{
		"RESULT_FILE.MEASUREMENT":     sqltypes.NewString("u only"),
		"RESULT_FILE.DOWNLOAD_RESULT": sqltypes.NewDatalink(datasetURL),
	}
	if _, err := env.eng.RunUploaded("RESULT_FILE.DOWNLOAD_RESULT", row2, code, "easl", "user.easl", nil,
		User{Name: "papiani"}); err == nil {
		t.Fatal("upload ran despite failed condition")
	}
}

func TestUploadedCodeCannotEscapeSandbox(t *testing.T) {
	env := newTestEnv(t)
	hostile := [][]byte{
		[]byte(`writeFile("/etc/evil", "x")`),
		[]byte(`writeFile("../escape.txt", "x")`),
		[]byte(`loadSlice("../../secret.tsf", "u", "z", 0)`),
		[]byte(`while (true) { }`),
	}
	for i, code := range hostile {
		_, err := env.eng.RunUploaded("RESULT_FILE.DOWNLOAD_RESULT", env.row, code, "easl", "evil.easl", nil,
			User{Name: "mallory"})
		if err == nil {
			t.Errorf("hostile code %d executed successfully", i)
		}
	}
}

func TestZipPackagedOperation(t *testing.T) {
	env := newTestEnv(t)
	// Package the code as a zip with a helper file, as the paper's jar.
	var zbuf bytes.Buffer
	zw := zip.NewWriter(&zbuf)
	f, _ := zw.Create("getimage.easl")
	f.Write([]byte(getImageSrc))
	f2, _ := zw.Create("README.txt")
	f2.Write([]byte("GetImage post-processing package"))
	zw.Close()
	env.files["http://fs1.sim:80/codes/getimage.zip"] = zbuf.Bytes()

	if _, err := env.db.Exec(
		`INSERT INTO CODE_FILE VALUES ('GetImage.zip', 'S19990110150932', DLVALUE('http://fs1.sim:80/codes/getimage.zip'))`); err != nil {
		t.Fatal(err)
	}
	op := &xuis.Operation{
		Name: "GetImageZip", Type: "EASL", Filename: "getimage.easl", Format: "zip", GuestAccess: true,
		Location: &xuis.Location{DatabaseResult: &xuis.DatabaseResult{
			ColID:      "CODE_FILE.DOWNLOAD_CODE_FILE",
			Conditions: []xuis.Condition{{ColID: "CODE_FILE.CODE_NAME", Eq: "'GetImage.zip'"}},
		}},
	}
	if err := env.spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", op); err != nil {
		t.Fatal(err)
	}
	res, err := env.eng.Run("GetImageZip", "RESULT_FILE.DOWNLOAD_RESULT", env.row,
		map[string]string{"slice": "y", "type": "v"}, User{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 1 || res.Files[0].Name != "slice.pgm" {
		t.Fatalf("zip op files = %v", fileNames(res.Files))
	}
	// The README from the package must not be reported as an output.
	for _, f := range res.Files {
		if f.Name == "README.txt" {
			t.Fatal("package file leaked into outputs")
		}
	}
}

func TestZipSlipRejected(t *testing.T) {
	env := newTestEnv(t)
	var zbuf bytes.Buffer
	zw := zip.NewWriter(&zbuf)
	f, _ := zw.Create("../evil.easl")
	f.Write([]byte(`print("escaped")`))
	zw.Close()
	_, err := env.eng.RunUploaded("RESULT_FILE.DOWNLOAD_RESULT", env.row, zbuf.Bytes(), "zip", "evil.easl", nil,
		User{Name: "mallory"})
	if err == nil || !strings.Contains(err.Error(), "escapes") {
		t.Fatalf("zip-slip: %v", err)
	}
}

// TestURLOperation reproduces the paper's SDB splice: an external HTTP
// service registered purely through XUIS markup.
func TestURLOperation(t *testing.T) {
	env := newTestEnv(t)
	var gotDataset, gotParam string
	sdb := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotDataset = r.URL.Query().Get("dataset")
		gotParam = r.URL.Query().Get("view")
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, "<html>SDB view of dataset</html>")
	}))
	defer sdb.Close()

	op := &xuis.Operation{
		Name:        "SDB",
		GuestAccess: true,
		Location:    &xuis.Location{URL: sdb.URL + "/servlet/SDBservlet"},
		Description: "NCSA Scientific Data Browser",
	}
	if err := env.spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", op); err != nil {
		t.Fatal(err)
	}
	res, err := env.eng.Run("SDB", "RESULT_FILE.DOWNLOAD_RESULT", env.row,
		map[string]string{"view": "contours"}, User{Guest: true})
	if err != nil {
		t.Fatal(err)
	}
	if gotDataset != datasetURL || gotParam != "contours" {
		t.Fatalf("service saw dataset=%q view=%q", gotDataset, gotParam)
	}
	if !strings.Contains(res.Stdout, "SDB view") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestURLOperationErrors(t *testing.T) {
	env := newTestEnv(t)
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "service exploded", http.StatusInternalServerError)
	}))
	defer failing.Close()
	op := &xuis.Operation{
		Name: "Broken", GuestAccess: true,
		Location: &xuis.Location{URL: failing.URL},
	}
	if err := env.spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", op); err != nil {
		t.Fatal(err)
	}
	if _, err := env.eng.Run("Broken", "RESULT_FILE.DOWNLOAD_RESULT", env.row, nil, User{}); err == nil {
		t.Fatal("HTTP 500 not surfaced")
	}
}

func TestCanUpload(t *testing.T) {
	env := newTestEnv(t)
	if !env.eng.CanUpload("RESULT_FILE.DOWNLOAD_RESULT", env.row, User{Name: "u"}) {
		t.Fatal("upload should be allowed for full users")
	}
	if env.eng.CanUpload("RESULT_FILE.DOWNLOAD_RESULT", env.row, User{Guest: true}) {
		t.Fatal("upload should be denied for guests")
	}
	if env.eng.CanUpload("RESULT_FILE.MEASUREMENT", env.row, User{}) {
		t.Fatal("upload on non-upload column")
	}
}

func TestWorkdirsAreCleanedUp(t *testing.T) {
	env := newTestEnv(t)
	if _, err := env.eng.Run("GetImage", "RESULT_FILE.DOWNLOAD_RESULT", env.row,
		map[string]string{"slice": "z"}, User{}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(env.eng.cfg.WorkRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("workdirs left behind: %v", names)
	}
}

func TestUnpackFormats(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`print("hi")`)

	// tar.gz
	tgz := newTgz(t, map[string][]byte{"main.easl": payload, "doc/help.txt": []byte("help")})
	names, err := unpackPackage(tgz, "tar.gz", "main.easl", filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("tar.gz names = %v", names)
	}
	// plain
	if _, err := unpackPackage(payload, "easl", "main.easl", filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	// unsupported
	if _, err := unpackPackage(payload, "rar", "main.easl", filepath.Join(dir, "c")); err == nil {
		t.Fatal("rar accepted")
	}
	// empty zip
	var emptyZip bytes.Buffer
	zip.NewWriter(&emptyZip).Close()
	if _, err := unpackPackage(emptyZip.Bytes(), "zip", "x", filepath.Join(dir, "d")); err == nil {
		t.Fatal("empty zip accepted")
	}
}

func newTgz(t *testing.T, files map[string][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	gzw := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gzw)
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		data := files[name]
		if err := tw.WriteHeader(&tar.Header{Name: name, Mode: 0o644, Size: int64(len(data))}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gzw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func fileNames(fs []OutputFile) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name
	}
	return out
}
