package ops

import (
	"archive/tar"
	"archive/zip"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// unpackPackage writes a code package into the working directory. The
// paper: operations "can be packaged in a number of different formats
// including various compressed archive formats (such as tar.Z, gz, zip,
// tar etc.)". Supported here: "zip", "tar", "tar.gz"/"tgz", "gz"
// (single gzipped file) and "easl"/"" (a bare script stored under the
// entry name). Returns the written file names.
func unpackPackage(data []byte, format, entry, workdir string) ([]string, error) {
	switch strings.ToLower(format) {
	case "", "easl", "plain":
		if err := writeConfined(workdir, entry, data); err != nil {
			return nil, err
		}
		return []string{entry}, nil
	case "zip", "jar":
		return unpackZip(data, workdir)
	case "tar":
		return unpackTar(bytes.NewReader(data), workdir)
	case "tar.gz", "tgz":
		gz, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		defer gz.Close()
		return unpackTar(gz, workdir)
	case "gz":
		gz, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		defer gz.Close()
		content, err := io.ReadAll(io.LimitReader(gz, 256<<20))
		if err != nil {
			return nil, err
		}
		if err := writeConfined(workdir, entry, content); err != nil {
			return nil, err
		}
		return []string{entry}, nil
	default:
		return nil, fmt.Errorf("ops: unsupported package format %q", format)
	}
}

func unpackZip(data []byte, workdir string) ([]string, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	var names []string
	for _, f := range zr.File {
		if f.FileInfo().IsDir() {
			continue
		}
		rc, err := f.Open()
		if err != nil {
			return nil, err
		}
		content, err := io.ReadAll(io.LimitReader(rc, 256<<20))
		rc.Close()
		if err != nil {
			return nil, err
		}
		if err := writeConfined(workdir, f.Name, content); err != nil {
			return nil, err
		}
		names = append(names, f.Name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("ops: empty zip package")
	}
	return names, nil
}

func unpackTar(r io.Reader, workdir string) ([]string, error) {
	tr := tar.NewReader(r)
	var names []string
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if hdr.Typeflag != tar.TypeReg {
			continue
		}
		content, err := io.ReadAll(io.LimitReader(tr, 256<<20))
		if err != nil {
			return nil, err
		}
		if err := writeConfined(workdir, hdr.Name, content); err != nil {
			return nil, err
		}
		names = append(names, hdr.Name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("ops: empty tar package")
	}
	return names, nil
}

// writeConfined refuses archive entries that would escape the working
// directory (zip-slip defence: uploaded packages are untrusted).
func writeConfined(workdir, name string, data []byte) error {
	if name == "" || strings.HasPrefix(name, "/") || strings.Contains(name, "..") ||
		strings.ContainsAny(name, "\\\x00") {
		return fmt.Errorf("ops: archive entry %q escapes the working directory", name)
	}
	dst := filepath.Join(workdir, filepath.FromSlash(name))
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	return os.WriteFile(dst, data, 0o644)
}
