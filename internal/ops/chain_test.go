package ops

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sqltypes"
	"repro/internal/xuis"
)

// histogramSrc is the second chain stage: it consumes the PGM image the
// GetImage stage produced (a binary intermediate, read byte-wise) and
// reduces it further to a 4-bin brightness histogram.
const histogramSrc = `
let img = readFile(filename)
// Skip the "P5\n<w> <h>\n255\n" header: find the third newline.
let seen = 0
let start = 0
let i = 0
while (seen < 3) {
	if (img[i] == chr(10)) { seen = seen + 1 }
	i = i + 1
}
start = i
let bins = [0, 0, 0, 0]
while (i < len(img)) {
	let b = floor(ord(img[i]) / 64)
	if (b > 3) { b = 3 }
	bins[b] = bins[b] + 1
	i = i + 1
}
writeFile("histogram.txt", "dark=" + str(bins[0]) + " mid1=" + str(bins[1]) +
	" mid2=" + str(bins[2]) + " bright=" + str(bins[3]))
print("histogram over", len(img) - start, "pixels")
`

// addChainOps registers the Histogram stage beside GetImage.
func addChainOps(t *testing.T, env *testEnv) {
	t.Helper()
	env.files["http://fs1.sim:80/codes/histogram.easl"] = []byte(histogramSrc)
	if _, err := env.db.Exec(
		`INSERT INTO CODE_FILE VALUES ('Histogram.easl', 'S19990110150932',
			DLVALUE('http://fs1.sim:80/codes/histogram.easl'))`); err != nil {
		t.Fatal(err)
	}
	op := &xuis.Operation{
		Name: "Histogram", Type: "EASL", Filename: "histogram.easl", Format: "easl", GuestAccess: true,
		Location: &xuis.Location{DatabaseResult: &xuis.DatabaseResult{
			ColID:      "CODE_FILE.DOWNLOAD_CODE_FILE",
			Conditions: []xuis.Condition{{ColID: "CODE_FILE.CODE_NAME", Eq: "'Histogram.easl'"}},
		}},
	}
	if err := env.spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", op); err != nil {
		t.Fatal(err)
	}
}

// TestRunChain: GetImage → Histogram, the paper's future-work
// "operation chaining" — the 12³ cube becomes a 12×12 image becomes a
// one-line histogram, all server-side.
func TestRunChain(t *testing.T) {
	env := newTestEnv(t)
	addChainOps(t, env)
	chain := []ChainStep{
		{Op: "GetImage", Params: map[string]string{"slice": "z", "type": "u"}},
		{Op: "Histogram"},
	}
	res, err := env.eng.RunChain("RESULT_FILE.DOWNLOAD_RESULT", env.row, chain, User{Name: "guest", Guest: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	if len(res.Final.Files) != 1 || res.Final.Files[0].Name != "histogram.txt" {
		t.Fatalf("final files = %v", fileNames(res.Final.Files))
	}
	content := string(res.Final.Files[0].Data)
	if !strings.HasPrefix(content, "dark=") {
		t.Fatalf("histogram content: %q", content)
	}
	// The histogram covers every pixel of the 12×12 slice.
	var dark, mid1, mid2, bright int
	if _, err := fmt.Sscanf(content, "dark=%d mid1=%d mid2=%d bright=%d", &dark, &mid1, &mid2, &bright); err != nil {
		t.Fatalf("parse %q: %v", content, err)
	}
	if dark+mid1+mid2+bright != 144 {
		t.Fatalf("histogram total = %d, want 144", dark+mid1+mid2+bright)
	}
	// The chained batch plan records the intermediate staging.
	if !strings.Contains(res.Final.BatchPlan, "stage chained intermediate -> slice.pgm") {
		t.Fatalf("chain plan:\n%s", res.Final.BatchPlan)
	}
}

func TestRunChainErrors(t *testing.T) {
	env := newTestEnv(t)
	addChainOps(t, env)
	// Empty chain.
	if _, err := env.eng.RunChain("RESULT_FILE.DOWNLOAD_RESULT", env.row, nil, User{}); err == nil {
		t.Fatal("empty chain ran")
	}
	// Unknown second step.
	_, err := env.eng.RunChain("RESULT_FILE.DOWNLOAD_RESULT", env.row, []ChainStep{
		{Op: "GetImage", Params: map[string]string{"slice": "z"}},
		{Op: "Nonexistent"},
	}, User{})
	if err == nil || !strings.Contains(err.Error(), "Nonexistent") {
		t.Fatalf("unknown step: %v", err)
	}
	// URL operations cannot consume intermediates.
	if err := env.spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", &xuis.Operation{
		Name: "Remote", GuestAccess: true,
		Location: &xuis.Location{URL: "http://example.org/x"},
	}); err != nil {
		t.Fatal(err)
	}
	_, err = env.eng.RunChain("RESULT_FILE.DOWNLOAD_RESULT", env.row, []ChainStep{
		{Op: "GetImage", Params: map[string]string{"slice": "z"}},
		{Op: "Remote"},
	}, User{})
	if err == nil || !strings.Contains(err.Error(), "chained intermediate") {
		t.Fatalf("URL chain step: %v", err)
	}
	// Guest policy applies to later stages too.
	if err := env.spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", &xuis.Operation{
		Name: "StaffOnly", Type: "EASL", Filename: "histogram.easl", Format: "easl", GuestAccess: false,
		Location: &xuis.Location{DatabaseResult: &xuis.DatabaseResult{
			ColID:      "CODE_FILE.DOWNLOAD_CODE_FILE",
			Conditions: []xuis.Condition{{ColID: "CODE_FILE.CODE_NAME", Eq: "'Histogram.easl'"}},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	_, err = env.eng.RunChain("RESULT_FILE.DOWNLOAD_RESULT", env.row, []ChainStep{
		{Op: "GetImage", Params: map[string]string{"slice": "z"}},
		{Op: "StaffOnly"},
	}, User{Name: "guest", Guest: true})
	if err == nil || !strings.Contains(err.Error(), "guest") {
		t.Fatalf("guest chain step: %v", err)
	}
}

// TestRunOnRows: one operation applied to many datasets (future work
// "operations applied to multiple datasets").
func TestRunOnRows(t *testing.T) {
	env := newTestEnv(t)
	// A second dataset row sharing the same simulation.
	env.files["http://fs1.sim:80/vol0/run1/ts5.tsf"] = env.files[datasetURL]
	if _, err := env.db.Exec(
		`INSERT INTO RESULT_FILE VALUES ('ts5.tsf', 'S19990110150932', 'u,v,w,p',
			DLVALUE('http://fs1.sim:80/vol0/run1/ts5.tsf'))`); err != nil {
		t.Fatal(err)
	}
	row2 := map[string]sqltypes.Value{
		"RESULT_FILE.FILE_NAME":       sqltypes.NewString("ts5.tsf"),
		"RESULT_FILE.SIMULATION_KEY":  sqltypes.NewString("S19990110150932"),
		"RESULT_FILE.MEASUREMENT":     sqltypes.NewString("u,v,w,p"),
		"RESULT_FILE.DOWNLOAD_RESULT": sqltypes.NewDatalink("http://fs1.sim:80/vol0/run1/ts5.tsf"),
	}
	badRow := map[string]sqltypes.Value{
		"RESULT_FILE.SIMULATION_KEY":  sqltypes.NewString("S_OTHER"),
		"RESULT_FILE.DOWNLOAD_RESULT": sqltypes.NewDatalink(datasetURL),
	}
	results := env.eng.RunOnRows("GetImage", "RESULT_FILE.DOWNLOAD_RESULT",
		[]map[string]sqltypes.Value{env.row, row2, badRow},
		map[string]string{"slice": "z", "type": "u"}, User{})
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("good rows failed: %v %v", results[0].Err, results[1].Err)
	}
	if results[2].Err == nil {
		t.Fatal("condition-failing row succeeded")
	}
	for i, r := range results[:2] {
		if len(r.Result.Files) != 1 {
			t.Fatalf("row %d files = %v", i, fileNames(r.Result.Files))
		}
	}
}
