package ops

import (
	"fmt"
	"io"
	"net/url"
	"sort"

	"repro/internal/xuis"
)

// runURLOperation invokes an external post-processing service — the
// paper's mechanism for splicing third-party tools (NCSA's Scientific
// Data Browser) into the archive "simply included via XUIS
// modification". The service receives the dataset's DATALINK URL and
// the user's parameters as query arguments and returns the derived
// product directly.
func (e *Engine) runURLOperation(op *xuis.Operation, datasetURL string, params map[string]string) (*Result, error) {
	base, err := url.Parse(op.Location.URL)
	if err != nil {
		return nil, fmt.Errorf("ops: operation %s has malformed URL location: %w", op.Name, err)
	}
	q := base.Query()
	q.Set("dataset", datasetURL)
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		q.Set(k, params[k])
	}
	base.RawQuery = q.Encode()

	resp, err := e.cfg.HTTPClient.Get(base.String())
	if err != nil {
		return nil, fmt.Errorf("ops: URL operation %s: %w", op.Name, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("ops: URL operation %s returned HTTP %d: %s", op.Name, resp.StatusCode, firstLine(body))
	}
	res := &Result{
		BatchPlan: fmt.Sprintf("invoke URL service %s\n", base.String()),
	}
	ct := resp.Header.Get("Content-Type")
	if isTextual(ct) {
		res.Stdout = string(body)
	} else {
		res.Files = []OutputFile{{Name: "response" + extFor(ct), Data: body}}
	}
	return res, nil
}

func isTextual(contentType string) bool {
	switch {
	case contentType == "",
		len(contentType) >= 5 && contentType[:5] == "text/",
		contentType == "application/json",
		contentType == "application/xml":
		return true
	}
	return false
}

func extFor(contentType string) string {
	switch contentType {
	case "image/x-portable-graymap":
		return ".pgm"
	case "image/x-portable-pixmap":
		return ".ppm"
	case "image/png":
		return ".png"
	case "application/octet-stream":
		return ".bin"
	default:
		return ".dat"
	}
}

func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			return string(b[:i])
		}
		if i > 200 {
			return string(b[:200])
		}
	}
	return string(b)
}
