package ops

import (
	"fmt"

	"repro/internal/sqltypes"
	"repro/internal/xuis"
)

// Operation chaining and multi-dataset application — two of the paper's
// explicit future-work items ("operation chaining", "operations applied
// to multiple datasets") implemented on top of the engine.

// ChainStep names one stage of a chain with its parameters.
type ChainStep struct {
	Op     string
	Params map[string]string
}

// ChainResult reports a chain execution: the per-step results plus the
// final product.
type ChainResult struct {
	Steps []*Result
	// Final is the last step's result; its files are the chain output.
	Final *Result
}

// RunChain executes the steps in order against the row's DATALINK
// column. The first step runs on the archived dataset; each subsequent
// step runs on the previous step's first output file (the chained
// intermediate stays server-side, never crossing the network). Every
// step must be an operation declared on the column, pass its own <if>
// conditions, and satisfy the guest policy.
func (e *Engine) RunChain(colID string, row map[string]sqltypes.Value, steps []ChainStep, u User) (*ChainResult, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("ops: empty operation chain")
	}
	col := e.findColumn(colID)
	if col == nil {
		return nil, fmt.Errorf("ops: unknown column %s", colID)
	}
	lookup := func(name string) *xuis.Operation {
		for _, op := range col.Operations {
			if op.Name == name {
				return op
			}
		}
		return nil
	}

	out := &ChainResult{}
	// Stage 1 runs through the ordinary path (cache included).
	first, err := e.Run(steps[0].Op, colID, row, steps[0].Params, u)
	if err != nil {
		return nil, fmt.Errorf("ops: chain step 1 (%s): %w", steps[0].Op, err)
	}
	out.Steps = append(out.Steps, first)
	prev := first

	for i, step := range steps[1:] {
		if len(prev.Files) == 0 {
			return nil, fmt.Errorf("ops: chain step %d (%s) produced no file for the next stage", i+1, steps[i].Op)
		}
		intermediate := prev.Files[0]
		op := lookup(step.Op)
		if op == nil {
			return nil, fmt.Errorf("ops: no operation %s on %s", step.Op, colID)
		}
		if u.Guest && !op.GuestAccess {
			return nil, fmt.Errorf("ops: operation %s is not available to guest users", step.Op)
		}
		if !conditionsMatch(op.If, row) {
			return nil, fmt.Errorf("ops: operation %s does not apply to this row", step.Op)
		}
		if op.Location != nil && op.Location.URL != "" {
			return nil, fmt.Errorf("ops: URL operation %s cannot consume a chained intermediate", step.Op)
		}
		res, err := e.runPackagedOnBytes(op, intermediate.Name, intermediate.Data, step.Params, u)
		if err != nil {
			return nil, fmt.Errorf("ops: chain step %d (%s): %w", i+2, step.Op, err)
		}
		res.Operation = step.Op
		out.Steps = append(out.Steps, res)
		prev = res
	}
	out.Final = prev
	return out, nil
}

// RunOnRows applies one operation to many result rows ("operations
// applied to multiple datasets"): each row's DATALINK is processed
// independently and the per-row results are returned in order. Rows
// failing the operation's conditions produce an error entry rather than
// stopping the batch.
type RowResult struct {
	Result *Result
	Err    error
}

// RunOnRows executes the named operation over every row.
func (e *Engine) RunOnRows(opName, colID string, rows []map[string]sqltypes.Value, params map[string]string, u User) []RowResult {
	out := make([]RowResult, len(rows))
	for i, row := range rows {
		res, err := e.Run(opName, colID, row, params, u)
		out[i] = RowResult{Result: res, Err: err}
	}
	return out
}
