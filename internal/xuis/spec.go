// Package xuis implements the XML User Interface Specification at the
// heart of the paper: a schema-derived XML document that drives the
// entire web interface. The element vocabulary reproduces the paper's
// fragments — <table>, <tablealias>, <column>, <type>, <pk>/<refby>,
// <fk substcolumn=…>, <samples>, <operation> (with <if>/<condition>,
// <location>, <parameters>) and <upload> — and the package provides the
// default-XUIS generator tool, structural validation standing in for the
// paper's DTD, and the customisation transforms the paper describes
// (aliases, hidden tables/columns, substitute columns, user-defined
// relationships, per-user personalisation).
package xuis

import (
	"encoding/xml"
	"fmt"
	"strings"
)

// Spec is the root <xuis> document.
type Spec struct {
	XMLName  xml.Name `xml:"xuis"`
	Database string   `xml:"database,attr"`
	Version  string   `xml:"version,attr,omitempty"`
	Tables   []*Table `xml:"table"`
}

// Table describes one archive table and its UI behaviour.
type Table struct {
	Name       string    `xml:"name,attr"`
	PrimaryKey string    `xml:"primaryKey,attr"` // "TABLE.COL [TABLE.COL…]"
	Hidden     bool      `xml:"hidden,attr,omitempty"`
	Alias      string    `xml:"tablealias,omitempty"`
	Columns    []*Column `xml:"column"`
}

// Column describes one column: its type, key relationships, sample
// values and any operations or upload capability bound to it.
type Column struct {
	Name   string   `xml:"name,attr"`
	ColID  string   `xml:"colid,attr"` // "TABLE.COLUMN"
	Hidden bool     `xml:"hidden,attr,omitempty"`
	Alias  string   `xml:"colalias,omitempty"`
	Type   TypeSpec `xml:"type"`
	// PK carries reverse references when this column is (part of) the
	// primary key: every table.column that references it.
	PK *PKSpec `xml:"pk,omitempty"`
	// FK links this column to the primary key it references; an
	// optional substitute column replaces raw key values in result
	// tables (the paper's customisation example).
	FK         *FKSpec      `xml:"fk,omitempty"`
	Samples    *Samples     `xml:"samples,omitempty"`
	Operations []*Operation `xml:"operation,omitempty"`
	Upload     *Upload      `xml:"upload,omitempty"`
}

// TypeSpec renders the paper's idiom <type><VARCHAR/><size>30</size></type>:
// an empty element named after the SQL type plus an optional size.
type TypeSpec struct {
	SQLType string // "VARCHAR", "INTEGER", "DATALINK", …
	Size    int
}

// MarshalXML writes <type><VARCHAR/><size>30</size></type>.
func (t TypeSpec) MarshalXML(e *xml.Encoder, start xml.StartElement) error {
	if err := e.EncodeToken(start); err != nil {
		return err
	}
	name := t.SQLType
	if name == "" {
		name = "VARCHAR"
	}
	inner := xml.StartElement{Name: xml.Name{Local: name}}
	if err := e.EncodeToken(inner); err != nil {
		return err
	}
	if err := e.EncodeToken(inner.End()); err != nil {
		return err
	}
	if t.Size > 0 {
		if err := e.EncodeElement(t.Size, xml.StartElement{Name: xml.Name{Local: "size"}}); err != nil {
			return err
		}
	}
	return e.EncodeToken(start.End())
}

// UnmarshalXML parses the same shape back.
func (t *TypeSpec) UnmarshalXML(d *xml.Decoder, start xml.StartElement) error {
	for {
		tok, err := d.Token()
		if err != nil {
			return err
		}
		switch el := tok.(type) {
		case xml.StartElement:
			if el.Name.Local == "size" {
				var size int
				if err := d.DecodeElement(&size, &el); err != nil {
					return err
				}
				t.Size = size
			} else {
				t.SQLType = el.Name.Local
				if err := d.Skip(); err != nil {
					return err
				}
			}
		case xml.EndElement:
			if el.Name == start.Name {
				return nil
			}
		}
	}
}

// PKSpec lists the referencing columns of a primary-key column.
type PKSpec struct {
	RefBy []RefBy `xml:"refby"`
}

// RefBy is one <refby tablecolumn="SIMULATION.AUTHOR_KEY"/>.
type RefBy struct {
	TableColumn string `xml:"tablecolumn,attr"`
}

// FKSpec is <fk tablecolumn="AUTHOR.AUTHOR_KEY" substcolumn="AUTHOR.NAME"/>.
type FKSpec struct {
	TableColumn string `xml:"tablecolumn,attr"`
	SubstColumn string `xml:"substcolumn,attr,omitempty"`
	// UserDefined marks relationships added through customisation that
	// have no backing referential-integrity constraint (the paper:
	// "Hypertext links to related data can be specified in the XML even
	// if there are no referential integrity constraints defined").
	UserDefined bool `xml:"userdefined,attr,omitempty"`
}

// Samples holds example values shown in query-form drop-downs.
type Samples struct {
	Values []string `xml:"sample"`
}

// Operation binds a server-side post-processing code to a column, the
// paper's central "operations" mechanism.
type Operation struct {
	Name        string      `xml:"name,attr"`
	Type        string      `xml:"type,attr"`     // "EASL" here; "JAVA" in the paper
	Filename    string      `xml:"filename,attr"` // initial executable inside the package
	Format      string      `xml:"format,attr"`   // "easl", "zip", "tar.gz", …
	GuestAccess bool        `xml:"guest.access,attr"`
	PerColumn   bool        `xml:"column,attr"`
	If          *IfSpec     `xml:"if,omitempty"`
	Location    *Location   `xml:"location"`
	Description string      `xml:"description,omitempty"`
	Parameters  *Parameters `xml:"parameters,omitempty"`
}

// IfSpec restricts an operation/upload to rows matching all conditions.
type IfSpec struct {
	Conditions []Condition `xml:"condition"`
}

// Condition is <condition colid="…"><eq>'VALUE'</eq></condition>.
// Values keep the paper's quoted-literal form.
type Condition struct {
	ColID string `xml:"colid,attr"`
	Eq    string `xml:"eq"`
}

// Value strips the SQL-style quotes from the condition literal.
func (c Condition) Value() string {
	return strings.Trim(strings.TrimSpace(c.Eq), "'")
}

// Location says where the operation's code lives: either archived in
// the database (a DATALINK column plus conditions selecting the row) or
// an external URL service (the paper's NCSA SDB example).
type Location struct {
	DatabaseResult *DatabaseResult `xml:"database.result,omitempty"`
	URL            string          `xml:"URL,omitempty"`
}

// DatabaseResult selects the DATALINK holding the packaged code.
type DatabaseResult struct {
	ColID      string      `xml:"colid,attr"`
	Conditions []Condition `xml:"condition"`
}

// Parameters describes the HTML form generated at invocation time.
type Parameters struct {
	Params []Param `xml:"param"`
}

// Param wraps one variable, matching the paper's <param><variable>…
type Param struct {
	Variable Variable `xml:"variable"`
}

// Variable is one form control: a <select> with options or a set of
// <input> radio/text controls.
type Variable struct {
	Description string  `xml:"description"`
	Select      *Select `xml:"select,omitempty"`
	Inputs      []Input `xml:"input,omitempty"`
}

// Select is a drop-down.
type Select struct {
	Name    string   `xml:"name,attr"`
	Size    int      `xml:"size,attr,omitempty"`
	Options []Option `xml:"option"`
}

// Option is one drop-down entry.
type Option struct {
	Value string `xml:"value,attr"`
	Label string `xml:",chardata"`
}

// Input is a radio button or text field.
type Input struct {
	Type  string `xml:"type,attr"`
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr,omitempty"`
	Label string `xml:",chardata"`
}

// Upload marks a DATALINK column as accepting user-uploaded
// post-processing code, with guest-policy and row conditions.
type Upload struct {
	Type        string  `xml:"type,attr"`
	Format      string  `xml:"format,attr"`
	GuestAccess bool    `xml:"guest.access,attr"`
	PerColumn   bool    `xml:"column,attr"`
	If          *IfSpec `xml:"if,omitempty"`
}

// ---------- lookup helpers ----------

// Table returns the (case-insensitive) named table.
func (s *Spec) Table(name string) (*Table, bool) {
	for _, t := range s.Tables {
		if strings.EqualFold(t.Name, name) {
			return t, true
		}
	}
	return nil, false
}

// Column returns the (case-insensitive) named column.
func (t *Table) Column(name string) (*Column, bool) {
	for _, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return c, true
		}
	}
	return nil, false
}

// DisplayName returns the alias if set, else the raw name.
func (t *Table) DisplayName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// DisplayName returns the alias if set, else the raw name.
func (c *Column) DisplayName() string {
	if c.Alias != "" {
		return c.Alias
	}
	return c.Name
}

// VisibleTables returns non-hidden tables in document order.
func (s *Spec) VisibleTables() []*Table {
	var out []*Table
	for _, t := range s.Tables {
		if !t.Hidden {
			out = append(out, t)
		}
	}
	return out
}

// VisibleColumns returns non-hidden columns in document order.
func (t *Table) VisibleColumns() []*Column {
	var out []*Column
	for _, c := range t.Columns {
		if !c.Hidden {
			out = append(out, c)
		}
	}
	return out
}

// SplitColID splits "TABLE.COLUMN" into its parts.
func SplitColID(colid string) (table, column string, err error) {
	i := strings.IndexByte(colid, '.')
	if i <= 0 || i == len(colid)-1 {
		return "", "", fmt.Errorf("xuis: malformed colid %q (want TABLE.COLUMN)", colid)
	}
	return colid[:i], colid[i+1:], nil
}

// Marshal renders the spec as indented XML with the standard header.
func (s *Spec) Marshal() ([]byte, error) {
	body, err := xml.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), append(body, '\n')...), nil
}

// Parse reads a spec from XML.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	if err := xml.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("xuis: %w", err)
	}
	return &s, nil
}

// Clone deep-copies the spec (personalisation: "different users … can
// have different XML files" — clone the default, then customise).
func (s *Spec) Clone() *Spec {
	data, err := xml.Marshal(s)
	if err != nil {
		// Marshal of an in-memory spec cannot fail with well-formed
		// field types; a failure here is a programming error.
		panic("xuis: clone marshal: " + err.Error())
	}
	var out Spec
	if err := xml.Unmarshal(data, &out); err != nil {
		panic("xuis: clone unmarshal: " + err.Error())
	}
	return &out
}
