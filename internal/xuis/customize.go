package xuis

import "fmt"

// Customisation transforms — the paper's "the default XUIS can be
// customised prior to system initialisation": aliases, hiding, FK
// substitute columns, user-defined relationships, samples, operations
// and upload markup. Each helper mutates the spec in place and returns
// an error when the target does not exist, so customisation scripts
// fail loudly rather than silently producing a broken UI.

// SetTableAlias sets the display alias for a table.
func (s *Spec) SetTableAlias(table, alias string) error {
	t, ok := s.Table(table)
	if !ok {
		return fmt.Errorf("xuis: unknown table %s", table)
	}
	t.Alias = alias
	return nil
}

// SetColumnAlias sets the display alias for a column.
func (s *Spec) SetColumnAlias(table, column, alias string) error {
	c, err := s.column(table, column)
	if err != nil {
		return err
	}
	c.Alias = alias
	return nil
}

// HideTable removes a table from the generated UI without touching the
// database.
func (s *Spec) HideTable(table string) error {
	t, ok := s.Table(table)
	if !ok {
		return fmt.Errorf("xuis: unknown table %s", table)
	}
	t.Hidden = true
	return nil
}

// HideColumn removes a column from query forms and result tables.
func (s *Spec) HideColumn(table, column string) error {
	c, err := s.column(table, column)
	if err != nil {
		return err
	}
	c.Hidden = true
	return nil
}

// SetFKSubstitution makes result tables show substColumn's value from
// the referenced table instead of the raw foreign-key value — the
// paper's example replaces AUTHOR_KEY with the author's Name.
func (s *Spec) SetFKSubstitution(table, column, substColumn string) error {
	c, err := s.column(table, column)
	if err != nil {
		return err
	}
	if c.FK == nil {
		return fmt.Errorf("xuis: column %s.%s has no foreign key to substitute", table, column)
	}
	c.FK.SubstColumn = substColumn
	return nil
}

// AddUserRelationship declares a browsing link that has no backing
// referential-integrity constraint.
func (s *Spec) AddUserRelationship(table, column, targetTableColumn string) error {
	c, err := s.column(table, column)
	if err != nil {
		return err
	}
	if c.FK != nil {
		return fmt.Errorf("xuis: column %s.%s already has a relationship", table, column)
	}
	c.FK = &FKSpec{TableColumn: targetTableColumn, UserDefined: true}
	return nil
}

// SetSamples replaces a column's sample values ("different sample
// values" is one of the paper's customisation points).
func (s *Spec) SetSamples(table, column string, samples ...string) error {
	c, err := s.column(table, column)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		c.Samples = nil
		return nil
	}
	c.Samples = &Samples{Values: samples}
	return nil
}

// AddOperation attaches a post-processing operation to a column.
func (s *Spec) AddOperation(table, column string, op *Operation) error {
	c, err := s.column(table, column)
	if err != nil {
		return err
	}
	for _, existing := range c.Operations {
		if existing.Name == op.Name {
			return fmt.Errorf("xuis: operation %s already defined on %s.%s", op.Name, table, column)
		}
	}
	c.Operations = append(c.Operations, op)
	return nil
}

// RemoveOperation detaches a named operation.
func (s *Spec) RemoveOperation(table, column, name string) error {
	c, err := s.column(table, column)
	if err != nil {
		return err
	}
	for i, existing := range c.Operations {
		if existing.Name == name {
			c.Operations = append(c.Operations[:i], c.Operations[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("xuis: no operation %s on %s.%s", name, table, column)
}

// SetUpload enables (or, with nil, disables) code upload on a column.
func (s *Spec) SetUpload(table, column string, up *Upload) error {
	c, err := s.column(table, column)
	if err != nil {
		return err
	}
	c.Upload = up
	return nil
}

func (s *Spec) column(table, column string) (*Column, error) {
	t, ok := s.Table(table)
	if !ok {
		return nil, fmt.Errorf("xuis: unknown table %s", table)
	}
	c, ok := t.Column(column)
	if !ok {
		return nil, fmt.Errorf("xuis: unknown column %s.%s", table, column)
	}
	return c, nil
}
