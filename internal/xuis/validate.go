package xuis

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/sqldb"
)

// Validate checks the structural rules the paper's DTD would enforce,
// plus referential consistency against the live catalogue: every colid
// must name a real table.column, FK targets must exist, operation
// locations must be well formed, and upload/operation markup may only
// hang off DATALINK columns.
func Validate(s *Spec, cat *sqldb.Catalog) error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("xuis: "+format, args...))
	}
	colExists := func(colid string) bool {
		table, column, err := SplitColID(colid)
		if err != nil {
			return false
		}
		schema, ok := cat.Table(table)
		if !ok {
			return false
		}
		return schema.ColIndex(column) >= 0
	}
	checkConds := func(where string, conds []Condition) {
		for _, c := range conds {
			if !colExists(c.ColID) {
				report("%s: condition references unknown column %q", where, c.ColID)
			}
			if strings.TrimSpace(c.Eq) == "" {
				report("%s: condition on %s has empty <eq>", where, c.ColID)
			}
		}
	}

	if s.Database == "" {
		report("missing database attribute")
	}
	seenTables := map[string]bool{}
	for _, t := range s.Tables {
		key := strings.ToUpper(t.Name)
		if seenTables[key] {
			report("duplicate table %s", t.Name)
		}
		seenTables[key] = true
		schema, ok := cat.Table(t.Name)
		if !ok {
			report("table %s does not exist in the database", t.Name)
			continue
		}
		for _, pkcol := range strings.Fields(t.PrimaryKey) {
			if !colExists(pkcol) {
				report("table %s: primaryKey names unknown column %q", t.Name, pkcol)
			}
		}
		seenCols := map[string]bool{}
		for _, c := range t.Columns {
			where := t.Name + "." + c.Name
			ck := strings.ToUpper(c.Name)
			if seenCols[ck] {
				report("duplicate column %s", where)
			}
			seenCols[ck] = true
			if schema.ColIndex(c.Name) < 0 {
				report("column %s does not exist in the database", where)
				continue
			}
			wantColID := strings.ToUpper(t.Name) + "." + strings.ToUpper(c.Name)
			if !strings.EqualFold(c.ColID, wantColID) {
				report("column %s: colid %q does not match %q", where, c.ColID, wantColID)
			}
			if c.Type.SQLType == "" {
				report("column %s: missing type", where)
			}
			if c.PK != nil {
				for _, r := range c.PK.RefBy {
					if !colExists(r.TableColumn) {
						report("column %s: refby names unknown column %q", where, r.TableColumn)
					}
				}
			}
			if c.FK != nil {
				if !colExists(c.FK.TableColumn) {
					report("column %s: fk targets unknown column %q", where, c.FK.TableColumn)
				}
				if c.FK.SubstColumn != "" {
					if !colExists(c.FK.SubstColumn) {
						report("column %s: fk substcolumn %q unknown", where, c.FK.SubstColumn)
					} else {
						// The substitute must live in the referenced table.
						ft, _, _ := SplitColID(c.FK.TableColumn)
						st, _, _ := SplitColID(c.FK.SubstColumn)
						if !strings.EqualFold(ft, st) {
							report("column %s: substcolumn %q is not in referenced table %s", where, c.FK.SubstColumn, ft)
						}
					}
				}
			}
			for _, op := range c.Operations {
				opWhere := fmt.Sprintf("operation %s on %s", op.Name, where)
				if op.Name == "" {
					report("%s: missing name", opWhere)
				}
				if op.Location == nil {
					report("%s: missing <location>", opWhere)
				} else {
					hasDB := op.Location.DatabaseResult != nil
					hasURL := strings.TrimSpace(op.Location.URL) != ""
					switch {
					case hasDB && hasURL:
						report("%s: location has both database.result and URL", opWhere)
					case !hasDB && !hasURL:
						report("%s: location is empty", opWhere)
					case hasDB:
						dr := op.Location.DatabaseResult
						if !colExists(dr.ColID) {
							report("%s: location colid %q unknown", opWhere, dr.ColID)
						}
						checkConds(opWhere, dr.Conditions)
					}
				}
				if op.If != nil {
					checkConds(opWhere, op.If.Conditions)
				}
				if op.Parameters != nil {
					for i, p := range op.Parameters.Params {
						v := p.Variable
						if v.Select == nil && len(v.Inputs) == 0 {
							report("%s: param %d has no control", opWhere, i+1)
						}
						if v.Select != nil && v.Select.Name == "" {
							report("%s: param %d select missing name", opWhere, i+1)
						}
						for _, inp := range v.Inputs {
							if inp.Name == "" {
								report("%s: param %d input missing name", opWhere, i+1)
							}
						}
					}
				}
			}
			if c.Upload != nil {
				col, _ := schema.Col(c.Name)
				if col.Type.Datalink == nil {
					report("column %s: <upload> requires a DATALINK column", where)
				}
				if c.Upload.If != nil {
					checkConds("upload on "+where, c.Upload.If.Conditions)
				}
			}
		}
	}
	return errors.Join(errs...)
}
