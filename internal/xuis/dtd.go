package xuis

// DTD is the document type definition for XUIS files — the paper:
// "Default XUIS conforms to a DTD that we have created." The Go XML
// stack does not validate against DTDs, so Validate() enforces these
// rules programmatically (plus catalogue consistency the DTD cannot
// express); the DTD itself is served for interoperability and
// documents the element vocabulary in one place.
const DTD = `<!-- DTD for the EASIA XML User Interface Specification (XUIS) -->
<!ELEMENT xuis (table*)>
<!ATTLIST xuis
  database CDATA #REQUIRED
  version  CDATA #IMPLIED>

<!ELEMENT table (tablealias?, column*)>
<!ATTLIST table
  name       CDATA #REQUIRED
  primaryKey CDATA #REQUIRED
  hidden     (true|false) "false">

<!ELEMENT tablealias (#PCDATA)>

<!ELEMENT column (colalias?, type, pk?, fk?, samples?, operation*, upload?)>
<!ATTLIST column
  name   CDATA #REQUIRED
  colid  CDATA #REQUIRED
  hidden (true|false) "false">

<!ELEMENT colalias (#PCDATA)>

<!-- The SQL type is an empty element named after the type, e.g.
     <type><VARCHAR/><size>30</size></type> -->
<!ELEMENT type ((INTEGER|DOUBLE|VARCHAR|BOOLEAN|TIMESTAMP|BLOB|CLOB|DATALINK), size?)>
<!ELEMENT INTEGER   EMPTY>
<!ELEMENT DOUBLE    EMPTY>
<!ELEMENT VARCHAR   EMPTY>
<!ELEMENT BOOLEAN   EMPTY>
<!ELEMENT TIMESTAMP EMPTY>
<!ELEMENT BLOB      EMPTY>
<!ELEMENT CLOB      EMPTY>
<!ELEMENT DATALINK  EMPTY>
<!ELEMENT size (#PCDATA)>

<!ELEMENT pk (refby*)>
<!ELEMENT refby EMPTY>
<!ATTLIST refby tablecolumn CDATA #REQUIRED>

<!ELEMENT fk EMPTY>
<!ATTLIST fk
  tablecolumn CDATA #REQUIRED
  substcolumn CDATA #IMPLIED
  userdefined (true|false) "false">

<!ELEMENT samples (sample*)>
<!ELEMENT sample (#PCDATA)>

<!ELEMENT operation (if?, location, description?, parameters?)>
<!ATTLIST operation
  name         CDATA #REQUIRED
  type         CDATA #IMPLIED
  filename     CDATA #IMPLIED
  format       CDATA #IMPLIED
  guest.access (true|false) "false"
  column       (true|false) "false">

<!ELEMENT if (condition+)>
<!ELEMENT condition (eq)>
<!ATTLIST condition colid CDATA #REQUIRED>
<!ELEMENT eq (#PCDATA)>

<!ELEMENT location (database.result | URL)>
<!ELEMENT database.result (condition*)>
<!ATTLIST database.result colid CDATA #REQUIRED>
<!ELEMENT URL (#PCDATA)>

<!ELEMENT description (#PCDATA)>

<!ELEMENT parameters (param+)>
<!ELEMENT param (variable)>
<!ELEMENT variable (description, (select | input+))>
<!ELEMENT select (option+)>
<!ATTLIST select
  name CDATA #REQUIRED
  size CDATA #IMPLIED>
<!ELEMENT option (#PCDATA)>
<!ATTLIST option value CDATA #REQUIRED>
<!ELEMENT input (#PCDATA)>
<!ATTLIST input
  type  CDATA #REQUIRED
  name  CDATA #REQUIRED
  value CDATA #IMPLIED>

<!ELEMENT upload (if?)>
<!ATTLIST upload
  type         CDATA #REQUIRED
  format       CDATA #REQUIRED
  guest.access (true|false) "false"
  column       (true|false) "false">
`
