package xuis

import (
	"strings"
	"testing"

	"repro/internal/sqldb"
)

// testDB builds a miniature of the paper's turbulence schema with a few
// rows, enough to exercise generation, sampling and validation.
func testDB(t *testing.T) *sqldb.DB {
	t.Helper()
	db, err := sqldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ddl := `
CREATE TABLE AUTHOR (
  AUTHOR_KEY VARCHAR(30) PRIMARY KEY,
  NAME VARCHAR(100) NOT NULL,
  EMAIL VARCHAR(100));
CREATE TABLE SIMULATION (
  SIMULATION_KEY VARCHAR(30) PRIMARY KEY,
  AUTHOR_KEY VARCHAR(30) REFERENCES AUTHOR (AUTHOR_KEY),
  TITLE VARCHAR(200) NOT NULL);
CREATE TABLE RESULT_FILE (
  FILE_NAME VARCHAR(100),
  SIMULATION_KEY VARCHAR(30) REFERENCES SIMULATION (SIMULATION_KEY),
  MEASUREMENT VARCHAR(30),
  DOWNLOAD_RESULT DATALINK LINKTYPE URL NO FILE LINK CONTROL,
  PRIMARY KEY (FILE_NAME, SIMULATION_KEY));
`
	if err := db.ExecScript(ddl); err != nil {
		t.Fatal(err)
	}
	seed := []string{
		`INSERT INTO AUTHOR VALUES ('A19990110151042', 'Papiani', 'p@soton.ac.uk')`,
		`INSERT INTO AUTHOR VALUES ('A19990209151042', 'Wason', NULL)`,
		`INSERT INTO SIMULATION VALUES ('S19990110150932', 'A19990110151042', 'Channel flow Re=1395')`,
		`INSERT INTO RESULT_FILE VALUES ('ts1.tsf', 'S19990110150932', 'u,v,w,p',
			DLVALUE('http://fs1.sim:80/vol0/run1/ts1.tsf'))`,
	}
	for _, sql := range seed {
		if _, err := db.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func generate(t *testing.T, db *sqldb.DB) *Spec {
	t.Helper()
	spec, err := Generator{MaxSamples: 2}.Generate(db, "TURBULENCE")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestGeneratedAuthorFragment reproduces the paper's "XUIS fragment"
// slide: the AUTHOR table with type, size, pk/refby and samples.
func TestGeneratedAuthorFragment(t *testing.T) {
	spec := generate(t, testDB(t))
	data, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	xml := string(data)
	for _, want := range []string{
		`<table name="AUTHOR" primaryKey="AUTHOR.AUTHOR_KEY">`,
		`<column name="AUTHOR_KEY" colid="AUTHOR.AUTHOR_KEY">`,
		`<VARCHAR></VARCHAR>`,
		`<size>30</size>`,
		`<refby tablecolumn="SIMULATION.AUTHOR_KEY">`,
		`<sample>A19990110151042</sample>`,
		`<sample>A19990209151042</sample>`,
	} {
		if !strings.Contains(xml, want) {
			t.Errorf("generated XUIS missing %q\n%s", want, xml)
		}
	}
}

func TestGeneratedRelationships(t *testing.T) {
	spec := generate(t, testDB(t))
	sim, ok := spec.Table("SIMULATION")
	if !ok {
		t.Fatal("SIMULATION missing")
	}
	ak, _ := sim.Column("AUTHOR_KEY")
	if ak.FK == nil || ak.FK.TableColumn != "AUTHOR.AUTHOR_KEY" {
		t.Fatalf("fk = %+v", ak.FK)
	}
	sk, _ := sim.Column("SIMULATION_KEY")
	if sk.PK == nil || len(sk.PK.RefBy) != 1 || sk.PK.RefBy[0].TableColumn != "RESULT_FILE.SIMULATION_KEY" {
		t.Fatalf("pk refby = %+v", sk.PK)
	}
	rf, _ := spec.Table("RESULT_FILE")
	if rf.PrimaryKey != "RESULT_FILE.FILE_NAME RESULT_FILE.SIMULATION_KEY" {
		t.Fatalf("composite pk attr = %q", rf.PrimaryKey)
	}
	dl, _ := rf.Column("DOWNLOAD_RESULT")
	if dl.Type.SQLType != "DATALINK" {
		t.Fatalf("datalink type = %+v", dl.Type)
	}
	if dl.Samples != nil {
		t.Fatal("DATALINK column should not carry samples by default")
	}
}

func TestRoundTripXML(t *testing.T) {
	spec := generate(t, testDB(t))
	data, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := back.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("round trip not stable:\n--- first\n%s\n--- second\n%s", data, data2)
	}
}

func TestValidateAcceptsGenerated(t *testing.T) {
	db := testDB(t)
	spec := generate(t, db)
	if err := Validate(spec, db.Catalog()); err != nil {
		t.Fatalf("generated spec invalid: %v", err)
	}
}

func TestValidateCatchesBreakage(t *testing.T) {
	db := testDB(t)
	check := func(mutate func(*Spec), wantSub string) {
		t.Helper()
		spec := generate(t, db)
		mutate(spec)
		err := Validate(spec, db.Catalog())
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("want error containing %q, got %v", wantSub, err)
		}
	}
	check(func(s *Spec) { s.Tables[0].Name = "GHOST" }, "does not exist")
	check(func(s *Spec) { s.Tables[0].Columns[0].ColID = "AUTHOR.WRONG" }, "colid")
	check(func(s *Spec) {
		sim, _ := s.Table("SIMULATION")
		c, _ := sim.Column("AUTHOR_KEY")
		c.FK.SubstColumn = "SIMULATION.TITLE" // not in referenced table
	}, "not in referenced table")
	check(func(s *Spec) {
		rf, _ := s.Table("RESULT_FILE")
		c, _ := rf.Column("DOWNLOAD_RESULT")
		c.Operations = append(c.Operations, &Operation{Name: "Broken"})
	}, "missing <location>")
	check(func(s *Spec) {
		a, _ := s.Table("AUTHOR")
		c, _ := a.Column("NAME")
		c.Upload = &Upload{Type: "EASL", Format: "easl"}
	}, "requires a DATALINK")
}

// TestOperationFragment reproduces the paper's "XUIS fragment for an
// operation" slides: the GetImage operation with condition, location in
// the database, and a parameter form.
func TestOperationFragment(t *testing.T) {
	db := testDB(t)
	spec := generate(t, db)
	op := &Operation{
		Name:        "GetImage",
		Type:        "EASL",
		Filename:    "GetImage.easl",
		Format:      "easl",
		GuestAccess: true,
		If: &IfSpec{Conditions: []Condition{
			{ColID: "RESULT_FILE.SIMULATION_KEY", Eq: "'S19990110150932'"},
		}},
		Location: &Location{DatabaseResult: &DatabaseResult{
			ColID: "RESULT_FILE.DOWNLOAD_RESULT",
			Conditions: []Condition{
				{ColID: "RESULT_FILE.FILE_NAME", Eq: "'GetImage.easl'"},
			},
		}},
		Parameters: &Parameters{Params: []Param{
			{Variable: Variable{
				Description: "Select the slice you wish to visualise:",
				Select: &Select{Name: "slice", Size: 4, Options: []Option{
					{Value: "x0", Label: "x0=0.0"},
					{Value: "x1", Label: "x1=0.1015625"},
				}},
			}},
			{Variable: Variable{
				Description: "Select velocity component or pressure:",
				Inputs: []Input{
					{Type: "radio", Name: "type", Value: "u", Label: "u speed"},
					{Type: "radio", Name: "type", Value: "p", Label: "pressure"},
				},
			}},
		}},
	}
	if err := spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", op); err != nil {
		t.Fatal(err)
	}
	if err := Validate(spec, db.Catalog()); err != nil {
		t.Fatalf("spec with operation invalid: %v", err)
	}
	data, _ := spec.Marshal()
	xml := string(data)
	for _, want := range []string{
		`<operation name="GetImage" type="EASL" filename="GetImage.easl" format="easl" guest.access="true" column="false">`,
		`<condition colid="RESULT_FILE.SIMULATION_KEY">`,
		`<eq>&#39;S19990110150932&#39;</eq>`,
		`<database.result colid="RESULT_FILE.DOWNLOAD_RESULT">`,
		`<select name="slice" size="4">`,
		`<option value="x0">x0=0.0</option>`,
		`<input type="radio" name="type" value="u">u speed</input>`,
	} {
		if !strings.Contains(xml, want) {
			t.Errorf("operation XML missing %q\n%s", want, xml)
		}
	}
	// Round trip keeps the operation intact.
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	rf, _ := back.Table("RESULT_FILE")
	c, _ := rf.Column("DOWNLOAD_RESULT")
	if len(c.Operations) != 1 || c.Operations[0].Name != "GetImage" {
		t.Fatalf("operation lost in round trip: %+v", c.Operations)
	}
	if got := c.Operations[0].If.Conditions[0].Value(); got != "S19990110150932" {
		t.Fatalf("condition value = %q", got)
	}
}

// TestURLOperationFragment reproduces the paper's SDB fragment: an
// operation whose location is an external URL service.
func TestURLOperationFragment(t *testing.T) {
	db := testDB(t)
	spec := generate(t, db)
	op := &Operation{
		Name:        "SDB",
		GuestAccess: true,
		If: &IfSpec{Conditions: []Condition{
			{ColID: "RESULT_FILE.MEASUREMENT", Eq: "'HDF'"},
		}},
		Location:    &Location{URL: "http://quagga.ecs.soton.ac.uk:8080/servlet/SDBservlet"},
		Description: "NCSA Scientific Data Browser",
	}
	if err := spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", op); err != nil {
		t.Fatal(err)
	}
	if err := Validate(spec, db.Catalog()); err != nil {
		t.Fatal(err)
	}
	data, _ := spec.Marshal()
	if !strings.Contains(string(data), `<URL>http://quagga.ecs.soton.ac.uk:8080/servlet/SDBservlet</URL>`) {
		t.Fatalf("URL location missing:\n%s", data)
	}
}

// TestUploadFragment reproduces the paper's code-upload fragment:
// upload allowed on the DATALINK, but not for guests, with conditions.
func TestUploadFragment(t *testing.T) {
	db := testDB(t)
	spec := generate(t, db)
	up := &Upload{
		Type:        "EASL",
		Format:      "easl",
		GuestAccess: false,
		If: &IfSpec{Conditions: []Condition{
			{ColID: "RESULT_FILE.SIMULATION_KEY", Eq: "'S19990110150932'"},
			{ColID: "RESULT_FILE.MEASUREMENT", Eq: "'u,v,w,p'"},
		}},
	}
	if err := spec.SetUpload("RESULT_FILE", "DOWNLOAD_RESULT", up); err != nil {
		t.Fatal(err)
	}
	if err := Validate(spec, db.Catalog()); err != nil {
		t.Fatal(err)
	}
	data, _ := spec.Marshal()
	xml := string(data)
	if !strings.Contains(xml, `<upload type="EASL" format="easl" guest.access="false" column="false">`) {
		t.Fatalf("upload markup missing:\n%s", xml)
	}
	if !strings.Contains(xml, `<eq>&#39;u,v,w,p&#39;</eq>`) {
		t.Fatalf("upload conditions missing:\n%s", xml)
	}
}

// TestCustomisation reproduces the paper's customisation slide: alias
// the table, replace the FK value with the Author's Name.
func TestCustomisation(t *testing.T) {
	db := testDB(t)
	spec := generate(t, db)

	if err := spec.SetTableAlias("SIMULATION", "Numerical Simulation"); err != nil {
		t.Fatal(err)
	}
	if err := spec.SetFKSubstitution("SIMULATION", "AUTHOR_KEY", "AUTHOR.NAME"); err != nil {
		t.Fatal(err)
	}
	if err := spec.SetColumnAlias("SIMULATION", "AUTHOR_KEY", "Author"); err != nil {
		t.Fatal(err)
	}
	if err := spec.SetSamples("SIMULATION", "TITLE", "user defined sample 1", "user defined sample value 2"); err != nil {
		t.Fatal(err)
	}
	if err := spec.HideColumn("AUTHOR", "EMAIL"); err != nil {
		t.Fatal(err)
	}
	if err := Validate(spec, db.Catalog()); err != nil {
		t.Fatal(err)
	}

	data, _ := spec.Marshal()
	xml := string(data)
	for _, want := range []string{
		`<tablealias>Numerical Simulation</tablealias>`,
		`substcolumn="AUTHOR.NAME"`,
		`<sample>user defined sample 1</sample>`,
	} {
		if !strings.Contains(xml, want) {
			t.Errorf("customised XUIS missing %q", want)
		}
	}
	a, _ := spec.Table("AUTHOR")
	if cols := a.VisibleColumns(); len(cols) != 2 {
		t.Fatalf("visible author columns = %d, want 2", len(cols))
	}
	// Errors for unknown targets.
	if err := spec.SetTableAlias("GHOST", "x"); err == nil {
		t.Fatal("alias on unknown table accepted")
	}
	if err := spec.SetFKSubstitution("AUTHOR", "NAME", "X.Y"); err == nil {
		t.Fatal("substitution without FK accepted")
	}
}

func TestUserDefinedRelationship(t *testing.T) {
	db := testDB(t)
	spec := generate(t, db)
	// RESULT_FILE.MEASUREMENT has no FK; add a user-defined link.
	if err := spec.AddUserRelationship("RESULT_FILE", "MEASUREMENT", "SIMULATION.SIMULATION_KEY"); err != nil {
		t.Fatal(err)
	}
	rf, _ := spec.Table("RESULT_FILE")
	c, _ := rf.Column("MEASUREMENT")
	if c.FK == nil || !c.FK.UserDefined {
		t.Fatalf("user relationship not recorded: %+v", c.FK)
	}
	if err := Validate(spec, db.Catalog()); err != nil {
		t.Fatal(err)
	}
}

// TestPersonalisation: cloning gives independent per-user specs.
func TestPersonalisation(t *testing.T) {
	db := testDB(t)
	base := generate(t, db)
	guest := base.Clone()
	if err := guest.HideTable("AUTHOR"); err != nil {
		t.Fatal(err)
	}
	if len(guest.VisibleTables()) != len(base.VisibleTables())-1 {
		t.Fatal("clone hiding leaked or failed")
	}
	if a, _ := base.Table("AUTHOR"); a.Hidden {
		t.Fatal("customising the clone mutated the base spec")
	}
}

func TestSplitColID(t *testing.T) {
	tbl, col, err := SplitColID("RESULT_FILE.DOWNLOAD_RESULT")
	if err != nil || tbl != "RESULT_FILE" || col != "DOWNLOAD_RESULT" {
		t.Fatalf("got %s %s %v", tbl, col, err)
	}
	for _, bad := range []string{"NOPE", ".X", "X.", ""} {
		if _, _, err := SplitColID(bad); err == nil {
			t.Errorf("SplitColID(%q) accepted", bad)
		}
	}
}

func TestTitleCase(t *testing.T) {
	if got := titleCase("RESULT_FILE"); got != "Result File" {
		t.Fatalf("titleCase = %q", got)
	}
}

func TestDTDDocumentsEveryElement(t *testing.T) {
	// Every element the package can emit must be declared in the DTD.
	for _, el := range []string{
		"xuis", "table", "tablealias", "column", "colalias", "type", "size",
		"pk", "refby", "fk", "samples", "sample", "operation", "if",
		"condition", "eq", "location", "database.result", "URL",
		"description", "parameters", "param", "variable", "select",
		"option", "input", "upload", "DATALINK", "VARCHAR",
	} {
		if !strings.Contains(DTD, "<!ELEMENT "+el+" ") &&
			!strings.Contains(DTD, "<!ELEMENT "+el+"   ") &&
			!strings.Contains(DTD, "<!ELEMENT "+el+"\t") {
			t.Errorf("DTD missing element declaration for %q", el)
		}
	}
	for _, attr := range []string{"primaryKey", "colid", "substcolumn", "guest.access", "tablecolumn"} {
		if !strings.Contains(DTD, attr) {
			t.Errorf("DTD missing attribute %q", attr)
		}
	}
}
