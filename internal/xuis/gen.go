package xuis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqldb"
	"repro/internal/sqltypes"
)

// Generator builds the default XUIS for a database, mirroring the
// paper's tool: "Written in Java, uses JDBC to extract data and schema
// information from the database being used to archive simulation
// results." Here it walks the engine catalogue directly and samples
// column values with ordinary SELECTs.
type Generator struct {
	// MaxSamples bounds the sample values captured per column.
	MaxSamples int
	// SampleLOBs controls whether BLOB/CLOB/DATALINK columns get sample
	// values (off by default: the UI shows sizes, not contents).
	SampleLOBs bool
}

// Generate produces the default XUIS: every table, every column, types,
// sample data values, and the primary-key / foreign-key relationship
// markup that powers browsing.
func (g Generator) Generate(db *sqldb.DB, databaseName string) (*Spec, error) {
	if g.MaxSamples <= 0 {
		g.MaxSamples = 4
	}
	cat := db.Catalog()
	spec := &Spec{Database: strings.ToUpper(databaseName), Version: "1.0"}
	for _, name := range cat.TableNames() {
		schema, _ := cat.Table(name)
		t := &Table{
			Name:       schema.Name,
			PrimaryKey: pkAttr(schema),
			Alias:      titleCase(schema.Name),
		}
		refs := cat.ReferencedBy(schema.Name)
		for _, col := range schema.Cols {
			c := &Column{
				Name:  col.Name,
				ColID: schema.Name + "." + col.Name,
				Alias: titleCase(col.Name),
				Type:  typeSpecFor(col.Type),
			}
			// <pk><refby …/></pk> on primary-key columns.
			if isPKCol(schema, col.Name) {
				var refby []RefBy
				for _, r := range refs {
					if strings.EqualFold(r.RefColumn, col.Name) {
						refby = append(refby, RefBy{TableColumn: r.Table + "." + r.Column})
					}
				}
				sort.Slice(refby, func(i, j int) bool { return refby[i].TableColumn < refby[j].TableColumn })
				c.PK = &PKSpec{RefBy: refby}
			}
			// <fk tablecolumn=…/> on foreign-key columns.
			for _, fk := range schema.ForeignKeys {
				for i, fkCol := range fk.Cols {
					if strings.EqualFold(fkCol, col.Name) {
						c.FK = &FKSpec{TableColumn: fk.RefTable + "." + fk.RefCols[i]}
					}
				}
			}
			if samples, err := g.sampleColumn(db, schema, col); err != nil {
				return nil, err
			} else if len(samples) > 0 {
				c.Samples = &Samples{Values: samples}
			}
			t.Columns = append(t.Columns, c)
		}
		spec.Tables = append(spec.Tables, t)
	}
	return spec, nil
}

func (g Generator) sampleColumn(db *sqldb.DB, schema *sqldb.TableSchema, col sqldb.Column) ([]string, error) {
	switch col.Type.Kind {
	case sqltypes.KindBytes, sqltypes.KindClob, sqltypes.KindDatalink:
		if !g.SampleLOBs {
			return nil, nil
		}
	}
	sql := fmt.Sprintf("SELECT DISTINCT %s FROM %s WHERE %s IS NOT NULL ORDER BY %s LIMIT %d",
		col.Name, schema.Name, col.Name, col.Name, g.MaxSamples)
	rows, err := db.Query(sql)
	if err != nil {
		return nil, fmt.Errorf("xuis: sampling %s.%s: %w", schema.Name, col.Name, err)
	}
	var out []string
	for _, r := range rows.Data {
		out = append(out, r[0].AsString())
	}
	return out, nil
}

func pkAttr(schema *sqldb.TableSchema) string {
	parts := make([]string, len(schema.PrimaryKey))
	for i, col := range schema.PrimaryKey {
		parts[i] = schema.Name + "." + col
	}
	return strings.Join(parts, " ")
}

func isPKCol(schema *sqldb.TableSchema, col string) bool {
	for _, pk := range schema.PrimaryKey {
		if strings.EqualFold(pk, col) {
			return true
		}
	}
	return false
}

func typeSpecFor(t sqltypes.TypeInfo) TypeSpec {
	name := t.Kind.String()
	return TypeSpec{SQLType: name, Size: t.Size}
}

// titleCase turns "RESULT_FILE" into "Result File" for default aliases.
func titleCase(name string) string {
	words := strings.Split(strings.ToLower(name), "_")
	for i, w := range words {
		if w == "" {
			continue
		}
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ")
}
