package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// ContentType is the Prometheus text exposition format content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format, sorted by name (then labels) with one
// HELP/TYPE header per metric family. Histograms emit cumulative
// le-bounded buckets (the base-2 bucket upper bounds), _sum and _count.
// A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*registered, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return metricKey("", ms[i].labels) < metricKey("", ms[j].labels)
	})
	var b strings.Builder
	lastFamily := ""
	for _, m := range ms {
		if m.name != lastFamily {
			lastFamily = m.name
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", m.name, labelString(m.labels, "", ""), m.counter.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %d\n", m.name, labelString(m.labels, "", ""), m.gauge.Value())
		case kindHistogram:
			writeHistogram(&b, m)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits cumulative buckets up to the highest non-empty
// one, then +Inf, _sum and _count.
func writeHistogram(b *strings.Builder, m *registered) {
	h := m.hist
	var counts [histBuckets]uint64
	var total uint64
	top := -1
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
		if counts[i] > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += counts[i]
		_, hi := bucketBounds(i)
		fmt.Fprintf(b, "%s_bucket%s %d\n", m.name, labelString(m.labels, "le", fmt.Sprintf("%d", hi)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", m.name, labelString(m.labels, "le", "+Inf"), total)
	fmt.Fprintf(b, "%s_sum%s %d\n", m.name, labelString(m.labels, "", ""), h.sum.Load())
	fmt.Fprintf(b, "%s_count%s %d\n", m.name, labelString(m.labels, "", ""), total)
}

// labelString renders {k="v",...}, optionally appending one extra label
// (the histogram le bound). Empty label sets render as "".
func labelString(labels []Label, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	return strings.ReplaceAll(s, "\n", "\\n")
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WritePrometheus(w) //nolint:errcheck // client disconnects are not errors
	})
}
