package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// metricKind tags what a registered metric is.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// registered is one named metric in a registry.
type registered struct {
	name   string
	help   string
	kind   metricKind
	labels []Label

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Label is one name=value metric dimension.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Registry is a named collection of metrics. Registration is idempotent:
// asking for an already-registered name+labels combination returns the
// existing metric, so instrumentation sites can re-register freely.
// A nil *Registry is valid and returns nil metrics everywhere — the
// disabled-telemetry fast path.
type Registry struct {
	mu      sync.Mutex
	metrics []*registered // registration order, for stable exposition
	byKey   map[string]*registered
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{byKey: make(map[string]*registered)}
}

// pairLabels converts variadic "k, v, k, v" arguments into Labels,
// panicking on an odd count (a programming error at an instrumentation
// site, not a runtime condition).
func pairLabels(kv []string) []Label {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %v", kv))
	}
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{Name: kv[i], Value: kv[i+1]})
	}
	return out
}

func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('|')
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup returns the existing registration for key, or installs reg.
func (r *Registry) lookup(key string, mk func() *registered) *registered {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		return m
	}
	m := mk()
	r.byKey[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or finds) a counter. Labels are k,v pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	ls := pairLabels(labels)
	m := r.lookup(metricKey(name, ls), func() *registered {
		return &registered{name: name, help: help, kind: kindCounter, labels: ls, counter: &Counter{}}
	})
	return m.counter
}

// Gauge registers (or finds) a settable gauge. Labels are k,v pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	ls := pairLabels(labels)
	m := r.lookup(metricKey(name, ls), func() *registered {
		return &registered{name: name, help: help, kind: kindGauge, labels: ls, gauge: &Gauge{}}
	})
	return m.gauge
}

// GaugeFunc registers a callback gauge whose value is computed at
// snapshot/scrape time. fn must be safe to call from any goroutine and
// must not call back into this registry.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...string) {
	if r == nil {
		return
	}
	ls := pairLabels(labels)
	r.lookup(metricKey(name, ls), func() *registered {
		return &registered{name: name, help: help, kind: kindGauge, labels: ls, gauge: &Gauge{fn: fn}}
	})
}

// Histogram registers (or finds) a log-bucketed histogram. Labels are
// k,v pairs.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	ls := pairLabels(labels)
	m := r.lookup(metricKey(name, ls), func() *registered {
		return &registered{name: name, help: help, kind: kindHistogram, labels: ls, hist: &Histogram{}}
	})
	return m.hist
}

// Metric is one entry of a registry snapshot.
type Metric struct {
	Name   string             `json:"name"`
	Kind   string             `json:"kind"` // "counter" | "gauge" | "histogram"
	Labels []Label            `json:"labels,omitempty"`
	Value  int64              `json:"value"` // counter total / gauge value; histogram count
	Hist   *HistogramSnapshot `json:"hist,omitempty"`
}

// Label returns the value of the named label ("" when absent).
func (m Metric) Label(name string) string {
	for _, l := range m.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Snapshot captures every registered metric, sorted by name then label
// key for deterministic output. A nil registry snapshots to nil.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*registered, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	out := make([]Metric, 0, len(ms))
	for _, m := range ms {
		e := Metric{Name: m.name, Kind: m.kind.String(), Labels: m.labels}
		switch m.kind {
		case kindCounter:
			e.Value = m.counter.Value()
		case kindGauge:
			e.Value = m.gauge.Value()
		case kindHistogram:
			s := m.hist.Snapshot()
			e.Value = int64(s.Count)
			e.Hist = &s
		}
		out = append(out, e)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return metricKey("", out[i].Labels) < metricKey("", out[j].Labels)
	})
	return out
}

// Find returns the snapshot entry for name with the given label pairs,
// and whether it exists. Convenience for tests and status pages.
func (r *Registry) Find(name string, labels ...string) (Metric, bool) {
	ls := pairLabels(labels)
	key := metricKey(name, ls)
	for _, m := range r.Snapshot() {
		if metricKey(m.Name, m.Labels) == key {
			return m, true
		}
	}
	return Metric{}, false
}
