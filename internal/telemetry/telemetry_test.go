package telemetry

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety: every metric op must be a no-op on nil receivers and a
// nil registry, so instrumentation sites never need nil checks.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(9)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "") != nil {
		t.Fatal("nil registry must return nil metrics")
	}
	r.GaugeFunc("x", "", func() int64 { return 1 })
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestCounterConcurrent: sharded counters must not lose increments
// under contention (run with -race in CI).
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, perWorker = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter lost increments: got %d want %d", got, workers*perWorker)
	}
}

// TestHistogramConcurrent drives concurrent recorders with a known value
// mix and checks exact count/sum plus bucket-accurate percentiles: an
// estimate must land inside the power-of-two bucket of the true
// percentile (the histogram's documented accuracy contract).
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// 90% of observations are 100, 10% are 10000.
				if i%10 == 0 {
					h.Observe(10000)
				} else {
					h.Observe(100)
				}
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	wantCount := uint64(workers * perWorker)
	if s.Count != wantCount {
		t.Fatalf("count = %d, want %d", s.Count, wantCount)
	}
	wantSum := int64(workers) * (9000*100 + 1000*10000)
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	// True p50 = 100 → bucket [64, 127]; true p95/p99 = 10000 → bucket
	// [8192, 16383].
	if s.P50 < 64 || s.P50 > 127 {
		t.Fatalf("p50 = %d, want within [64, 127]", s.P50)
	}
	for _, p := range []int64{s.P95, s.P99} {
		if p < 8192 || p > 16383 {
			t.Fatalf("p95/p99 = %d, want within [8192, 16383]", p)
		}
	}
}

// TestHistogramBuckets pins the bucket boundary math: 0 is its own
// bucket, powers of two open new buckets.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		lo, hi int64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 2, 3},
		{4, 4, 7},
		{1023, 512, 1023},
		{1024, 1024, 2047},
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.v)
		s := h.Snapshot()
		if s.P50 < c.lo || s.P50 > c.hi {
			t.Errorf("Observe(%d): p50 = %d, want within [%d, %d]", c.v, s.P50, c.lo, c.hi)
		}
		if s.Count != 1 || s.Sum != c.v {
			t.Errorf("Observe(%d): count/sum = %d/%d", c.v, s.Count, s.Sum)
		}
	}
}

// TestRegistryIdempotent: re-registering the same name+labels returns
// the same metric; different labels make distinct metrics.
func TestRegistryIdempotent(t *testing.T) {
	r := New()
	a := r.Counter("hits_total", "hits", "table", "T1")
	b := r.Counter("hits_total", "hits", "table", "T1")
	if a != b {
		t.Fatal("same name+labels must share one counter")
	}
	c := r.Counter("hits_total", "hits", "table", "T2")
	if a == c {
		t.Fatal("different labels must be distinct")
	}
	a.Add(2)
	c.Inc()
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot entries = %d, want 2", len(snap))
	}
	if snap[0].Value != 2 || snap[0].Label("table") != "T1" {
		t.Fatalf("snapshot[0] = %+v", snap[0])
	}
	if m, ok := r.Find("hits_total", "table", "T2"); !ok || m.Value != 1 {
		t.Fatalf("Find(T2) = %+v, %v", m, ok)
	}
}

// TestPrometheusGolden pins the exposition format byte for byte.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("app_requests_total", "Requests served.", "code", "200").Add(7)
	r.Gauge("app_queue_depth", "Queue depth.").Set(3)
	h := r.Histogram("app_latency_ns", "Request latency.")
	h.Observe(0)
	h.Observe(1)
	h.Observe(100)
	h.Observe(100)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_latency_ns Request latency.
# TYPE app_latency_ns histogram
app_latency_ns_bucket{le="0"} 1
app_latency_ns_bucket{le="1"} 2
app_latency_ns_bucket{le="3"} 2
app_latency_ns_bucket{le="7"} 2
app_latency_ns_bucket{le="15"} 2
app_latency_ns_bucket{le="31"} 2
app_latency_ns_bucket{le="63"} 2
app_latency_ns_bucket{le="127"} 4
app_latency_ns_bucket{le="+Inf"} 4
app_latency_ns_sum 201
app_latency_ns_count 4
# HELP app_queue_depth Queue depth.
# TYPE app_queue_depth gauge
app_queue_depth 3
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{code="200"} 7
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHandler checks the /metrics HTTP contract: status, content type,
// and a parseable body.
func TestHandler(t *testing.T) {
	r := New()
	r.Counter("up_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q, want %q", ct, ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "up_total 1") {
		t.Fatalf("body missing counter line:\n%s", body)
	}
}

// TestGaugeFunc: callback gauges compute at snapshot time.
func TestGaugeFunc(t *testing.T) {
	r := New()
	v := int64(10)
	r.GaugeFunc("live_items", "", func() int64 { return v })
	if m, _ := r.Find("live_items"); m.Value != 10 {
		t.Fatalf("gauge func value = %d", m.Value)
	}
	v = 42
	if m, _ := r.Find("live_items"); m.Value != 42 {
		t.Fatalf("gauge func value after change = %d", m.Value)
	}
}
