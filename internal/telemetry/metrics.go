// Package telemetry is the engine's dependency-free metrics core: sharded
// atomic counters, gauges and log-bucketed latency histograms, collected
// in a named registry and exposed programmatically (Registry.Snapshot)
// or as Prometheus text format (Registry.WritePrometheus / Handler).
//
// Every metric type is safe for concurrent use and nil-safe: methods on
// a nil *Counter/*Gauge/*Histogram are no-ops, so instrumentation sites
// can hold possibly-unregistered handles and pay (near) nothing when a
// metric is not exported. Recording on a live metric is one or two
// uncontended atomic adds — cheap enough for per-statement hot paths.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// counterShards must be a power of two. Shards are cache-line padded so
// concurrent writers on different Ps do not false-share.
const counterShards = 16

type counterShard struct {
	v atomic.Int64
	_ [120]byte
}

// Counter is a monotonically increasing sharded counter. The shard is
// picked from the caller's stack address — goroutines live on distinct
// stacks, so concurrent writers spread across shards without any
// runtime-internal hooks.
type Counter struct {
	shards [counterShards]counterShard
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	var probe byte
	i := (uintptr(unsafe.Pointer(&probe)) >> 10) & (counterShards - 1)
	c.shards[i].v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter's current total. The sum is not an atomic
// snapshot across shards; concurrent adds may or may not be included,
// which is the standard monitoring contract.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is an instantaneous value: either set explicitly (Set/Add) or
// computed on demand by a callback (registered via Registry.GaugeFunc).
type Gauge struct {
	v  atomic.Int64
	fn func() int64
}

// Set stores the gauge's value. No-op on a nil receiver or a callback
// gauge.
func (g *Gauge) Set(v int64) {
	if g == nil || g.fn != nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. No-op on a nil receiver or a callback
// gauge.
func (g *Gauge) Add(delta int64) {
	if g == nil || g.fn != nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the gauge's current value (invoking the callback for
// callback gauges).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return g.v.Load()
}

// histBuckets covers every non-negative int64: bucket i holds values v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).  Bucket 0 holds
// exactly the value 0.
const histBuckets = 64

// Histogram is a log-bucketed (base-2) histogram of non-negative int64
// observations — typically latencies in nanoseconds, or sizes/counts.
// Recording is a few atomic adds; quantiles are estimated from the
// bucket counts with linear interpolation inside the winning bucket, so
// an estimate is always within the true value's power-of-two bucket.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// Observe records one value. Negative values clamp to zero. No-op on a
// nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed time since start, in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Nanoseconds())
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum"`
	P50   int64  `json:"p50"`
	P95   int64  `json:"p95"`
	P99   int64  `json:"p99"`
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / int64(s.Count)
}

// Snapshot captures the histogram's bucket state and estimates the
// standard percentiles. Safe concurrently with Observe; a concurrent
// observation is either fully included or fully excluded per bucket.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var snap HistogramSnapshot
	if h == nil {
		return snap
	}
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	snap.Count = total
	snap.Sum = h.sum.Load()
	if total == 0 {
		return snap
	}
	snap.P50 = quantile(&counts, total, 0.50)
	snap.P95 = quantile(&counts, total, 0.95)
	snap.P99 = quantile(&counts, total, 0.99)
	return snap
}

// bucketBounds returns the value range [lo, hi] covered by bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		return lo, int64(^uint64(0) >> 1)
	}
	hi = int64(1)<<i - 1
	return lo, hi
}

// quantile locates the bucket holding the q-th sample and interpolates
// linearly inside it.
func quantile(counts *[histBuckets]uint64, total uint64, q float64) int64 {
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if rank < seen+c {
			lo, hi := bucketBounds(i)
			frac := float64(rank-seen) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		seen += c
	}
	return 0
}
