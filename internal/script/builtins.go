package script

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// registerBuiltins installs the ambient (capability-free) standard
// library: pure functions over numbers, strings, lists and maps, plus
// print(), which writes to the sandboxed output buffer.
func registerBuiltins(in *Interp) {
	b := in.globals.vars
	b["print"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = toStr(a)
		}
		return nil, in.Print(strings.Join(parts, " ") + "\n")
	})
	b["len"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("script: len expects 1 argument")
		}
		switch x := args[0].(type) {
		case string:
			return float64(len(x)), nil
		case *List:
			return float64(len(x.Elems)), nil
		case *Map:
			return float64(len(x.Entries)), nil
		default:
			return nil, fmt.Errorf("script: len of %s", typeName(args[0]))
		}
	})
	b["push"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("script: push expects (list, value)")
		}
		lst, ok := args[0].(*List)
		if !ok {
			return nil, fmt.Errorf("script: push into %s", typeName(args[0]))
		}
		if err := in.alloc(&nilLit{}, 1); err != nil {
			return nil, err
		}
		lst.Elems = append(lst.Elems, args[1])
		return lst, nil
	})
	b["keys"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("script: keys expects 1 argument")
		}
		m, ok := args[0].(*Map)
		if !ok {
			return nil, fmt.Errorf("script: keys of %s", typeName(args[0]))
		}
		if err := in.alloc(&nilLit{}, int64(len(m.Entries))+1); err != nil {
			return nil, err
		}
		ks := make([]string, 0, len(m.Entries))
		for k := range m.Entries {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		out := &List{Elems: make([]Value, len(ks))}
		for i, k := range ks {
			out.Elems[i] = k
		}
		return out, nil
	})
	b["has"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("script: has expects (map, key)")
		}
		m, ok := args[0].(*Map)
		if !ok {
			return nil, fmt.Errorf("script: has on %s", typeName(args[0]))
		}
		k, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("script: has key must be string")
		}
		_, exists := m.Entries[k]
		return exists, nil
	})
	b["range"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		var lo, hi float64
		switch len(args) {
		case 1:
			hi, _ = args[0].(float64)
		case 2:
			lo, _ = args[0].(float64)
			hi, _ = args[1].(float64)
		default:
			return nil, fmt.Errorf("script: range expects (n) or (lo, hi)")
		}
		n := int(hi - lo)
		if n < 0 {
			n = 0
		}
		if err := in.alloc(&nilLit{}, int64(n)+1); err != nil {
			return nil, err
		}
		out := &List{Elems: make([]Value, n)}
		for i := 0; i < n; i++ {
			out.Elems[i] = lo + float64(i)
		}
		return out, nil
	})
	b["str"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("script: str expects 1 argument")
		}
		return toStr(args[0]), nil
	})
	b["num"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("script: num expects 1 argument")
		}
		switch x := args[0].(type) {
		case float64:
			return x, nil
		case string:
			f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
			if err != nil {
				return nil, fmt.Errorf("script: num(%q): not a number", x)
			}
			return f, nil
		case bool:
			if x {
				return 1.0, nil
			}
			return 0.0, nil
		default:
			return nil, fmt.Errorf("script: num of %s", typeName(args[0]))
		}
	})
	// Numeric helpers.
	num1 := func(name string, f func(float64) float64) HostFunc {
		return func(in *Interp, args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("script: %s expects 1 argument", name)
			}
			x, ok := args[0].(float64)
			if !ok {
				return nil, fmt.Errorf("script: %s of %s", name, typeName(args[0]))
			}
			return f(x), nil
		}
	}
	b["abs"] = num1("abs", math.Abs)
	b["sqrt"] = num1("sqrt", math.Sqrt)
	b["floor"] = num1("floor", math.Floor)
	b["ceil"] = num1("ceil", math.Ceil)
	b["round"] = num1("round", math.Round)
	b["exp"] = num1("exp", math.Exp)
	b["log"] = num1("log", math.Log)
	b["sin"] = num1("sin", math.Sin)
	b["cos"] = num1("cos", math.Cos)
	num2 := func(name string, f func(a, b float64) float64) HostFunc {
		return func(in *Interp, args []Value) (Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("script: %s expects 2 arguments", name)
			}
			a, ok1 := args[0].(float64)
			c, ok2 := args[1].(float64)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("script: %s needs numbers", name)
			}
			return f(a, c), nil
		}
	}
	b["min"] = num2("min", math.Min)
	b["max"] = num2("max", math.Max)
	b["pow"] = num2("pow", math.Pow)
	// Byte-level string access for binary intermediates (chained ops).
	b["ord"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("script: ord expects 1 argument")
		}
		s, ok := args[0].(string)
		if !ok || len(s) == 0 {
			return nil, fmt.Errorf("script: ord needs a non-empty string")
		}
		return float64(s[0]), nil
	})
	b["chr"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("script: chr expects 1 argument")
		}
		f, ok := args[0].(float64)
		if !ok || f < 0 || f > 255 {
			return nil, fmt.Errorf("script: chr needs a number in [0,255]")
		}
		return string([]byte{byte(f)}), nil
	})
	b["substr"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("script: substr expects (string, start, len)")
		}
		s, ok1 := args[0].(string)
		start, ok2 := args[1].(float64)
		length, ok3 := args[2].(float64)
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("script: substr expects (string, number, number)")
		}
		lo := int(start)
		if lo < 0 || lo > len(s) {
			return nil, fmt.Errorf("script: substr start %d out of range", lo)
		}
		hi := lo + int(length)
		if hi > len(s) {
			hi = len(s)
		}
		if hi < lo {
			hi = lo
		}
		return s[lo:hi], nil
	})
	// String helpers.
	b["split"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("script: split expects (string, sep)")
		}
		s, ok1 := args[0].(string)
		sep, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("script: split needs strings")
		}
		parts := strings.Split(s, sep)
		if err := in.alloc(&nilLit{}, int64(len(parts))+1); err != nil {
			return nil, err
		}
		out := &List{Elems: make([]Value, len(parts))}
		for i, p := range parts {
			out.Elems[i] = p
		}
		return out, nil
	})
	b["join"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("script: join expects (list, sep)")
		}
		lst, ok1 := args[0].(*List)
		sep, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("script: join expects (list, string)")
		}
		parts := make([]string, len(lst.Elems))
		for i, e := range lst.Elems {
			parts[i] = toStr(e)
		}
		s := strings.Join(parts, sep)
		if err := in.alloc(&nilLit{}, int64(len(s)/16)+1); err != nil {
			return nil, err
		}
		return s, nil
	})
	b["contains"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("script: contains expects 2 arguments")
		}
		s, ok1 := args[0].(string)
		sub, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("script: contains needs strings")
		}
		return strings.Contains(s, sub), nil
	})
	b["upper"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("script: upper expects 1 argument")
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("script: upper of %s", typeName(args[0]))
		}
		return strings.ToUpper(s), nil
	})
	b["lower"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("script: lower expects 1 argument")
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("script: lower of %s", typeName(args[0]))
		}
		return strings.ToLower(s), nil
	})
	b["sort"] = HostFunc(func(in *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("script: sort expects 1 argument")
		}
		lst, ok := args[0].(*List)
		if !ok {
			return nil, fmt.Errorf("script: sort of %s", typeName(args[0]))
		}
		if err := in.alloc(&nilLit{}, int64(len(lst.Elems))+1); err != nil {
			return nil, err
		}
		out := &List{Elems: append([]Value(nil), lst.Elems...)}
		sort.SliceStable(out.Elems, func(i, j int) bool {
			a, aok := out.Elems[i].(float64)
			c, cok := out.Elems[j].(float64)
			if aok && cok {
				return a < c
			}
			return toStr(out.Elems[i]) < toStr(out.Elems[j])
		})
		return out, nil
	})
}
