package script

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Value is an EASL runtime value: nil, float64, string, bool, *List,
// *Map or a callable.
type Value any

// List is a mutable EASL list.
type List struct{ Elems []Value }

// Map is a mutable EASL string-keyed map.
type Map struct{ Entries map[string]Value }

// HostFunc is a capability injected by the host (the operations engine):
// dataset access, confined file writes, image encoding.
type HostFunc func(in *Interp, args []Value) (Value, error)

type userFunc struct {
	params []string
	body   []node
	env    *scope
}

// Sandbox errors, distinguished so the operations engine can report
// budget exhaustion separately from programming errors.
var (
	ErrStepBudget   = errors.New("script: step budget exhausted")
	ErrHeapBudget   = errors.New("script: heap budget exhausted")
	ErrOutputBudget = errors.New("script: output budget exhausted")
)

// Limits bound an execution. Zero fields select generous defaults.
type Limits struct {
	MaxSteps  int64 // interpreter steps (≈ AST nodes evaluated)
	MaxHeap   int64 // live-ish cells allocated (list/map/string growth)
	MaxOutput int64 // bytes print() may emit
}

// DefaultLimits is the sandbox configuration the operations engine uses
// for uploaded code.
var DefaultLimits = Limits{MaxSteps: 50_000_000, MaxHeap: 64 << 20, MaxOutput: 4 << 20}

type scope struct {
	vars   map[string]Value
	parent *scope
}

func (s *scope) lookup(name string) (Value, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (s *scope) set(name string, v Value) bool {
	for cur := s; cur != nil; cur = cur.parent {
		if _, ok := cur.vars[name]; ok {
			cur.vars[name] = v
			return true
		}
	}
	return false
}

// Interp executes a Program under sandbox limits.
type Interp struct {
	limits  Limits
	steps   int64
	heap    int64
	out     strings.Builder
	outLen  int64
	globals *scope
}

// control-flow signals implemented as error sentinels.
type returnSignal struct{ v Value }
type breakSignal struct{}
type continueSignal struct{}

func (returnSignal) Error() string   { return "return outside function" }
func (breakSignal) Error() string    { return "break outside loop" }
func (continueSignal) Error() string { return "continue outside loop" }

// New creates an interpreter with the given limits and host capabilities.
func New(limits Limits, hostFuncs map[string]HostFunc) *Interp {
	if limits.MaxSteps <= 0 {
		limits.MaxSteps = DefaultLimits.MaxSteps
	}
	if limits.MaxHeap <= 0 {
		limits.MaxHeap = DefaultLimits.MaxHeap
	}
	if limits.MaxOutput <= 0 {
		limits.MaxOutput = DefaultLimits.MaxOutput
	}
	in := &Interp{limits: limits, globals: &scope{vars: map[string]Value{}}}
	registerBuiltins(in)
	for name, f := range hostFuncs {
		in.globals.vars[name] = HostFunc(f)
	}
	return in
}

// Output returns everything the script printed.
func (in *Interp) Output() string { return in.out.String() }

// Steps reports interpreter steps consumed (for operation statistics).
func (in *Interp) Steps() int64 { return in.steps }

// SetGlobal pre-binds a variable (e.g. the dataset filename argument:
// the paper requires "the initial executable file accepts a filename as
// a command line parameter").
func (in *Interp) SetGlobal(name string, v Value) { in.globals.vars[name] = v }

// Run executes the program. The returned value is the script's final
// top-level `return`, or nil.
func (in *Interp) Run(p *Program) (Value, error) {
	v, err := in.execBlock(p.stmts, in.globals)
	var rs returnSignal
	if errors.As(err, &rs) {
		return rs.v, nil
	}
	if err != nil {
		return nil, err
	}
	return v, nil
}

func (in *Interp) step(n node) error {
	in.steps++
	if in.steps > in.limits.MaxSteps {
		return fmt.Errorf("%w (line %d)", ErrStepBudget, n.nodeLine())
	}
	return nil
}

func (in *Interp) alloc(n node, cells int64) error {
	in.heap += cells
	if in.heap > in.limits.MaxHeap {
		return fmt.Errorf("%w (line %d)", ErrHeapBudget, n.nodeLine())
	}
	return nil
}

// Print appends to the sandboxed output stream, enforcing the quota.
// Host functions use it too.
func (in *Interp) Print(s string) error {
	in.outLen += int64(len(s))
	if in.outLen > in.limits.MaxOutput {
		return ErrOutputBudget
	}
	in.out.WriteString(s)
	return nil
}

func (in *Interp) execBlock(stmts []node, env *scope) (Value, error) {
	var last Value
	for _, s := range stmts {
		v, err := in.execStmt(s, env)
		if err != nil {
			return nil, err
		}
		last = v
	}
	return last, nil
}

func (in *Interp) execStmt(s node, env *scope) (Value, error) {
	if err := in.step(s); err != nil {
		return nil, err
	}
	switch n := s.(type) {
	case *letStmt:
		v, err := in.eval(n.init, env)
		if err != nil {
			return nil, err
		}
		env.vars[n.name] = v
		return nil, nil
	case *assign:
		v, err := in.eval(n.value, env)
		if err != nil {
			return nil, err
		}
		switch target := n.target.(type) {
		case *ident:
			if !env.set(target.name, v) {
				return nil, fmt.Errorf("script: line %d: assignment to undeclared variable %s (use let)", n.line, target.name)
			}
		case *index:
			container, err := in.eval(target.x, env)
			if err != nil {
				return nil, err
			}
			idx, err := in.eval(target.idx, env)
			if err != nil {
				return nil, err
			}
			switch c := container.(type) {
			case *List:
				i, err := toIndex(idx, len(c.Elems), n.line)
				if err != nil {
					return nil, err
				}
				c.Elems[i] = v
			case *Map:
				key, ok := idx.(string)
				if !ok {
					return nil, fmt.Errorf("script: line %d: map keys must be strings", n.line)
				}
				if _, exists := c.Entries[key]; !exists {
					if err := in.alloc(n, 1); err != nil {
						return nil, err
					}
				}
				c.Entries[key] = v
			default:
				return nil, fmt.Errorf("script: line %d: cannot index %s", n.line, typeName(container))
			}
		}
		return nil, nil
	case *fnDef:
		env.vars[n.name] = &userFunc{params: n.params, body: n.body, env: env}
		return nil, nil
	case *ifStmt:
		cond, err := in.eval(n.cond, env)
		if err != nil {
			return nil, err
		}
		if truthyVal(cond) {
			return in.execBlock(n.then, &scope{vars: map[string]Value{}, parent: env})
		}
		if n.els != nil {
			return in.execBlock(n.els, &scope{vars: map[string]Value{}, parent: env})
		}
		return nil, nil
	case *whileStmt:
		for {
			cond, err := in.eval(n.cond, env)
			if err != nil {
				return nil, err
			}
			if !truthyVal(cond) {
				return nil, nil
			}
			_, err = in.execBlock(n.body, &scope{vars: map[string]Value{}, parent: env})
			if err != nil {
				if errors.As(err, &breakSignal{}) {
					return nil, nil
				}
				if errors.As(err, &continueSignal{}) {
					continue
				}
				return nil, err
			}
		}
	case *forStmt:
		seq, err := in.eval(n.seq, env)
		if err != nil {
			return nil, err
		}
		iterate := func(v Value) (bool, error) {
			child := &scope{vars: map[string]Value{n.name: v}, parent: env}
			_, err := in.execBlock(n.body, child)
			if err != nil {
				if errors.As(err, &breakSignal{}) {
					return false, nil
				}
				if errors.As(err, &continueSignal{}) {
					return true, nil
				}
				return false, err
			}
			return true, nil
		}
		switch c := seq.(type) {
		case *List:
			for _, v := range c.Elems {
				if err := in.step(n); err != nil {
					return nil, err
				}
				cont, err := iterate(v)
				if err != nil || !cont {
					return nil, err
				}
			}
		case *Map:
			keys := make([]string, 0, len(c.Entries))
			for k := range c.Entries {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if err := in.step(n); err != nil {
					return nil, err
				}
				cont, err := iterate(k)
				if err != nil || !cont {
					return nil, err
				}
			}
		case string:
			for _, r := range c {
				if err := in.step(n); err != nil {
					return nil, err
				}
				cont, err := iterate(string(r))
				if err != nil || !cont {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("script: line %d: cannot iterate %s", n.line, typeName(seq))
		}
		return nil, nil
	case *returnStmt:
		var v Value
		if n.val != nil {
			var err error
			v, err = in.eval(n.val, env)
			if err != nil {
				return nil, err
			}
		}
		return nil, returnSignal{v: v}
	case *breakStmt:
		return nil, breakSignal{}
	case *continueStmt:
		return nil, continueSignal{}
	case *exprStmt:
		return in.eval(n.x, env)
	default:
		return nil, fmt.Errorf("script: line %d: unsupported statement %T", s.nodeLine(), s)
	}
}

func (in *Interp) eval(e node, env *scope) (Value, error) {
	if err := in.step(e); err != nil {
		return nil, err
	}
	switch n := e.(type) {
	case *numLit:
		return n.v, nil
	case *strLit:
		return n.v, nil
	case *boolLit:
		return n.v, nil
	case *nilLit:
		return nil, nil
	case *ident:
		v, ok := env.lookup(n.name)
		if !ok {
			return nil, fmt.Errorf("script: line %d: undefined variable %s", n.line, n.name)
		}
		return v, nil
	case *listLit:
		if err := in.alloc(n, int64(len(n.elems))+1); err != nil {
			return nil, err
		}
		lst := &List{Elems: make([]Value, len(n.elems))}
		for i, el := range n.elems {
			v, err := in.eval(el, env)
			if err != nil {
				return nil, err
			}
			lst.Elems[i] = v
		}
		return lst, nil
	case *mapLit:
		if err := in.alloc(n, int64(len(n.keys))+1); err != nil {
			return nil, err
		}
		m := &Map{Entries: make(map[string]Value, len(n.keys))}
		for i := range n.keys {
			k, err := in.eval(n.keys[i], env)
			if err != nil {
				return nil, err
			}
			key, ok := k.(string)
			if !ok {
				return nil, fmt.Errorf("script: line %d: map keys must be strings", n.line)
			}
			v, err := in.eval(n.vals[i], env)
			if err != nil {
				return nil, err
			}
			m.Entries[key] = v
		}
		return m, nil
	case *unop:
		x, err := in.eval(n.x, env)
		if err != nil {
			return nil, err
		}
		switch n.op {
		case "-":
			f, ok := x.(float64)
			if !ok {
				return nil, fmt.Errorf("script: line %d: cannot negate %s", n.line, typeName(x))
			}
			return -f, nil
		case "!":
			return !truthyVal(x), nil
		}
		return nil, fmt.Errorf("script: line %d: unknown operator %s", n.line, n.op)
	case *binop:
		return in.evalBinop(n, env)
	case *index:
		container, err := in.eval(n.x, env)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(n.idx, env)
		if err != nil {
			return nil, err
		}
		switch c := container.(type) {
		case *List:
			i, err := toIndex(idx, len(c.Elems), n.line)
			if err != nil {
				return nil, err
			}
			return c.Elems[i], nil
		case *Map:
			key, ok := idx.(string)
			if !ok {
				return nil, fmt.Errorf("script: line %d: map keys must be strings", n.line)
			}
			return c.Entries[key], nil
		case string:
			i, err := toIndex(idx, len(c), n.line)
			if err != nil {
				return nil, err
			}
			return string(c[i]), nil
		default:
			return nil, fmt.Errorf("script: line %d: cannot index %s", n.line, typeName(container))
		}
	case *call:
		fn, err := in.eval(n.fn, env)
		if err != nil {
			return nil, err
		}
		args := make([]Value, len(n.args))
		for i, a := range n.args {
			v, err := in.eval(a, env)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		switch f := fn.(type) {
		case HostFunc:
			return f(in, args)
		case *userFunc:
			if len(args) != len(f.params) {
				return nil, fmt.Errorf("script: line %d: function expects %d arguments, got %d", n.line, len(f.params), len(args))
			}
			child := &scope{vars: make(map[string]Value, len(args)), parent: f.env}
			for i, p := range f.params {
				child.vars[p] = args[i]
			}
			_, err := in.execBlock(f.body, child)
			var rs returnSignal
			if errors.As(err, &rs) {
				return rs.v, nil
			}
			return nil, err
		default:
			return nil, fmt.Errorf("script: line %d: %s is not callable", n.line, typeName(fn))
		}
	default:
		return nil, fmt.Errorf("script: line %d: unsupported expression %T", e.nodeLine(), e)
	}
}

func (in *Interp) evalBinop(n *binop, env *scope) (Value, error) {
	// Short-circuit logic.
	if n.op == "&&" || n.op == "||" {
		l, err := in.eval(n.l, env)
		if err != nil {
			return nil, err
		}
		if n.op == "&&" && !truthyVal(l) {
			return false, nil
		}
		if n.op == "||" && truthyVal(l) {
			return true, nil
		}
		r, err := in.eval(n.r, env)
		if err != nil {
			return nil, err
		}
		return truthyVal(r), nil
	}
	l, err := in.eval(n.l, env)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(n.r, env)
	if err != nil {
		return nil, err
	}
	lf, lIsNum := l.(float64)
	rf, rIsNum := r.(float64)
	ls, lIsStr := l.(string)
	rs, rIsStr := r.(string)
	switch n.op {
	case "+":
		switch {
		case lIsNum && rIsNum:
			return lf + rf, nil
		case lIsStr || rIsStr:
			s := toStr(l) + toStr(r)
			if err := in.alloc(n, int64(len(s)/16)+1); err != nil {
				return nil, err
			}
			return s, nil
		case func() bool { _, ok := l.(*List); return ok }():
			if rl, ok := r.(*List); ok {
				ll := l.(*List)
				if err := in.alloc(n, int64(len(ll.Elems)+len(rl.Elems))+1); err != nil {
					return nil, err
				}
				out := &List{Elems: make([]Value, 0, len(ll.Elems)+len(rl.Elems))}
				out.Elems = append(out.Elems, ll.Elems...)
				out.Elems = append(out.Elems, rl.Elems...)
				return out, nil
			}
		}
		return nil, fmt.Errorf("script: line %d: cannot add %s and %s", n.line, typeName(l), typeName(r))
	case "-", "*", "/", "%":
		if !lIsNum || !rIsNum {
			return nil, fmt.Errorf("script: line %d: arithmetic needs numbers, got %s and %s", n.line, typeName(l), typeName(r))
		}
		switch n.op {
		case "-":
			return lf - rf, nil
		case "*":
			return lf * rf, nil
		case "/":
			if rf == 0 {
				return nil, fmt.Errorf("script: line %d: division by zero", n.line)
			}
			return lf / rf, nil
		default:
			if rf == 0 {
				return nil, fmt.Errorf("script: line %d: modulo by zero", n.line)
			}
			return math.Mod(lf, rf), nil
		}
	case "==", "!=":
		eq := valueEqual(l, r)
		if n.op == "!=" {
			eq = !eq
		}
		return eq, nil
	case "<", "<=", ">", ">=":
		var c int
		switch {
		case lIsNum && rIsNum:
			c = compareFloats(lf, rf)
		case lIsStr && rIsStr:
			c = strings.Compare(ls, rs)
		default:
			return nil, fmt.Errorf("script: line %d: cannot compare %s and %s", n.line, typeName(l), typeName(r))
		}
		switch n.op {
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		default:
			return c >= 0, nil
		}
	}
	return nil, fmt.Errorf("script: line %d: unknown operator %s", n.line, n.op)
}

func compareFloats(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func valueEqual(l, r Value) bool {
	if l == nil || r == nil {
		return l == nil && r == nil
	}
	switch a := l.(type) {
	case float64:
		b, ok := r.(float64)
		return ok && a == b
	case string:
		b, ok := r.(string)
		return ok && a == b
	case bool:
		b, ok := r.(bool)
		return ok && a == b
	default:
		return l == r // reference equality for lists/maps
	}
}

func truthyVal(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case float64:
		return x != 0
	case string:
		return x != ""
	case *List:
		return len(x.Elems) > 0
	case *Map:
		return len(x.Entries) > 0
	default:
		return true
	}
}

func toIndex(idx Value, n, line int) (int, error) {
	f, ok := idx.(float64)
	if !ok {
		return 0, fmt.Errorf("script: line %d: index must be a number", line)
	}
	i := int(f)
	if float64(i) != f {
		return 0, fmt.Errorf("script: line %d: index must be an integer", line)
	}
	if i < 0 || i >= n {
		return 0, fmt.Errorf("script: line %d: index %d out of range [0,%d)", line, i, n)
	}
	return i, nil
}

func typeName(v Value) string {
	switch v.(type) {
	case nil:
		return "nil"
	case float64:
		return "number"
	case string:
		return "string"
	case bool:
		return "bool"
	case *List:
		return "list"
	case *Map:
		return "map"
	case HostFunc, *userFunc:
		return "function"
	default:
		return fmt.Sprintf("%T", v)
	}
}

func toStr(v Value) string {
	switch x := v.(type) {
	case nil:
		return "nil"
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%g", x)
	case string:
		return x
	case bool:
		if x {
			return "true"
		}
		return "false"
	case *List:
		var b strings.Builder
		b.WriteByte('[')
		for i, e := range x.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(toStr(e))
		}
		b.WriteByte(']')
		return b.String()
	case *Map:
		keys := make([]string, 0, len(x.Entries))
		for k := range x.Entries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s: %s", k, toStr(x.Entries[k]))
		}
		b.WriteByte('}')
		return b.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}
