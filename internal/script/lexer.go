// Package script implements EASL (EASIA Scripting Language), a small,
// from-scratch interpreted language used to reproduce the paper's
// "upload Java code for secure server-side execution" feature without a
// JVM. Uploaded post-processing codes are EASL programs; the operations
// engine runs them under a capability sandbox: an explicit step budget,
// a heap quota, an output quota, and no ambient authority — every file
// and dataset access goes through host functions the engine injects,
// which confine paths to the per-session temporary directory exactly
// like the paper's dynamically created batch file + security-restricted
// second interpreter.
package script

import (
	"fmt"
	"strings"
)

type tkKind uint8

const (
	tkEOF tkKind = iota
	tkIdent
	tkNumber
	tkString
	tkPunct   // ( ) { } [ ] , ; : .
	tkOp      // + - * / % = == != < <= > >= && || !
	tkKeyword // let fn if else while for in return true false nil break continue
)

type tk struct {
	kind tkKind
	text string
	line int
}

var scriptKeywords = map[string]bool{
	"let": true, "fn": true, "if": true, "else": true, "while": true,
	"for": true, "in": true, "return": true, "true": true, "false": true,
	"nil": true, "break": true, "continue": true,
}

// lexScript tokenises EASL source.
func lexScript(src string) ([]tk, error) {
	var toks []tk
	line := 1
	i, n := 0, len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '"' || c == '\'':
			quote := c
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("script: line %d: unterminated string", line)
				}
				ch := src[i]
				if ch == quote {
					i++
					break
				}
				if ch == '\\' && i+1 < n {
					i++
					switch src[i] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '\\':
						sb.WriteByte('\\')
					case '"':
						sb.WriteByte('"')
					case '\'':
						sb.WriteByte('\'')
					default:
						return nil, fmt.Errorf("script: line %d: bad escape \\%c", line, src[i])
					}
					i++
					continue
				}
				if ch == '\n' {
					line++
				}
				sb.WriteByte(ch)
				i++
			}
			toks = append(toks, tk{tkString, sb.String(), line})
		case c >= '0' && c <= '9':
			start := i
			for i < n && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				j := i + 1
				if j < n && (src[j] == '+' || src[j] == '-') {
					j++
				}
				for j < n && src[j] >= '0' && src[j] <= '9' {
					j++
				}
				i = j
			}
			toks = append(toks, tk{tkNumber, src[start:i], line})
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			start := i
			for i < n && (src[i] == '_' || src[i] >= 'a' && src[i] <= 'z' ||
				src[i] >= 'A' && src[i] <= 'Z' || src[i] >= '0' && src[i] <= '9') {
				i++
			}
			word := src[start:i]
			if scriptKeywords[word] {
				toks = append(toks, tk{tkKeyword, word, line})
			} else {
				toks = append(toks, tk{tkIdent, word, line})
			}
		default:
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||":
				toks = append(toks, tk{tkOp, two, line})
				i += 2
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '=', '<', '>', '!':
				toks = append(toks, tk{tkOp, string(c), line})
				i++
			case '(', ')', '{', '}', '[', ']', ',', ';', ':', '.':
				toks = append(toks, tk{tkPunct, string(c), line})
				i++
			default:
				return nil, fmt.Errorf("script: line %d: unexpected character %q", line, c)
			}
		}
	}
	toks = append(toks, tk{tkEOF, "", line})
	return toks, nil
}
