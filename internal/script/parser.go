package script

import "fmt"

// AST node types. The interpreter walks these directly; EASL programs
// are small (uploaded post-processing codes), so no compilation pass is
// needed.

type node interface{ nodeLine() int }

type (
	numLit struct {
		line int
		v    float64
	}
	strLit struct {
		line int
		v    string
	}
	boolLit struct {
		line int
		v    bool
	}
	nilLit  struct{ line int }
	listLit struct {
		line  int
		elems []node
	}
	mapLit struct {
		line int
		keys []node
		vals []node
	}
	ident struct {
		line int
		name string
	}
	binop struct {
		line int
		op   string
		l, r node
	}
	unop struct {
		line int
		op   string
		x    node
	}
	call struct {
		line int
		fn   node
		args []node
	}
	index struct {
		line int
		x    node
		idx  node
	}
	letStmt struct {
		line int
		name string
		init node
	}
	assign struct {
		line   int
		target node // ident or index
		value  node
	}
	ifStmt struct {
		line int
		cond node
		then []node
		els  []node
	}
	whileStmt struct {
		line int
		cond node
		body []node
	}
	forStmt struct {
		line int
		name string
		seq  node
		body []node
	}
	fnDef struct {
		line   int
		name   string
		params []string
		body   []node
	}
	returnStmt struct {
		line int
		val  node // may be nil
	}
	breakStmt    struct{ line int }
	continueStmt struct{ line int }
	exprStmt     struct {
		line int
		x    node
	}
)

func (n *numLit) nodeLine() int       { return n.line }
func (n *strLit) nodeLine() int       { return n.line }
func (n *boolLit) nodeLine() int      { return n.line }
func (n *nilLit) nodeLine() int       { return n.line }
func (n *listLit) nodeLine() int      { return n.line }
func (n *mapLit) nodeLine() int       { return n.line }
func (n *ident) nodeLine() int        { return n.line }
func (n *binop) nodeLine() int        { return n.line }
func (n *unop) nodeLine() int         { return n.line }
func (n *call) nodeLine() int         { return n.line }
func (n *index) nodeLine() int        { return n.line }
func (n *letStmt) nodeLine() int      { return n.line }
func (n *assign) nodeLine() int       { return n.line }
func (n *ifStmt) nodeLine() int       { return n.line }
func (n *whileStmt) nodeLine() int    { return n.line }
func (n *forStmt) nodeLine() int      { return n.line }
func (n *fnDef) nodeLine() int        { return n.line }
func (n *returnStmt) nodeLine() int   { return n.line }
func (n *breakStmt) nodeLine() int    { return n.line }
func (n *continueStmt) nodeLine() int { return n.line }
func (n *exprStmt) nodeLine() int     { return n.line }

// Program is a parsed EASL script ready for execution.
type Program struct {
	stmts []node
}

// Parse compiles EASL source into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lexScript(src)
	if err != nil {
		return nil, err
	}
	p := &sparser{toks: toks}
	var stmts []node
	for !p.at(tkEOF, "") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return &Program{stmts: stmts}, nil
}

type sparser struct {
	toks []tk
	pos  int
}

func (p *sparser) cur() tk  { return p.toks[p.pos] }
func (p *sparser) next() tk { t := p.toks[p.pos]; p.pos++; return t }

func (p *sparser) at(kind tkKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *sparser) accept(kind tkKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *sparser) expect(kind tkKind, text string) (tk, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return tk{}, p.errf("expected %q, got %q", text, p.cur().text)
}

func (p *sparser) errf(format string, args ...any) error {
	return fmt.Errorf("script: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *sparser) statement() (node, error) {
	t := p.cur()
	switch {
	case p.accept(tkPunct, ";"):
		return p.statement()
	case t.kind == tkKeyword && t.text == "let":
		p.pos++
		name, err := p.expect(tkIdent, "")
		if err != nil {
			return nil, p.errf("expected variable name after let")
		}
		if _, err := p.expect(tkOp, "="); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.accept(tkPunct, ";")
		return &letStmt{line: t.line, name: name.text, init: init}, nil
	case t.kind == tkKeyword && t.text == "fn":
		p.pos++
		name, err := p.expect(tkIdent, "")
		if err != nil {
			return nil, p.errf("expected function name")
		}
		if _, err := p.expect(tkPunct, "("); err != nil {
			return nil, err
		}
		var params []string
		for !p.at(tkPunct, ")") {
			param, err := p.expect(tkIdent, "")
			if err != nil {
				return nil, p.errf("expected parameter name")
			}
			params = append(params, param.text)
			if !p.accept(tkPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tkPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &fnDef{line: t.line, name: name.text, params: params, body: body}, nil
	case t.kind == tkKeyword && t.text == "if":
		return p.ifStatement()
	case t.kind == tkKeyword && t.text == "while":
		p.pos++
		if _, err := p.expect(tkPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &whileStmt{line: t.line, cond: cond, body: body}, nil
	case t.kind == tkKeyword && t.text == "for":
		p.pos++
		if _, err := p.expect(tkPunct, "("); err != nil {
			return nil, err
		}
		name, err := p.expect(tkIdent, "")
		if err != nil {
			return nil, p.errf("expected loop variable")
		}
		if _, err := p.expect(tkKeyword, "in"); err != nil {
			return nil, err
		}
		seq, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &forStmt{line: t.line, name: name.text, seq: seq, body: body}, nil
	case t.kind == tkKeyword && t.text == "return":
		p.pos++
		var val node
		if !p.at(tkPunct, ";") && !p.at(tkPunct, "}") && !p.at(tkEOF, "") {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			val = v
		}
		p.accept(tkPunct, ";")
		return &returnStmt{line: t.line, val: val}, nil
	case t.kind == tkKeyword && t.text == "break":
		p.pos++
		p.accept(tkPunct, ";")
		return &breakStmt{line: t.line}, nil
	case t.kind == tkKeyword && t.text == "continue":
		p.pos++
		p.accept(tkPunct, ";")
		return &continueStmt{line: t.line}, nil
	default:
		// Expression or assignment.
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.accept(tkOp, "=") {
			switch x.(type) {
			case *ident, *index:
			default:
				return nil, p.errf("invalid assignment target")
			}
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			p.accept(tkPunct, ";")
			return &assign{line: t.line, target: x, value: val}, nil
		}
		p.accept(tkPunct, ";")
		return &exprStmt{line: t.line, x: x}, nil
	}
}

func (p *sparser) ifStatement() (node, error) {
	t, err := p.expect(tkKeyword, "if")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	stmt := &ifStmt{line: t.line, cond: cond, then: then}
	if p.accept(tkKeyword, "else") {
		if p.at(tkKeyword, "if") {
			chained, err := p.ifStatement()
			if err != nil {
				return nil, err
			}
			stmt.els = []node{chained}
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			stmt.els = els
		}
	}
	return stmt, nil
}

func (p *sparser) block() ([]node, error) {
	if _, err := p.expect(tkPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []node
	for !p.at(tkPunct, "}") {
		if p.at(tkEOF, "") {
			return nil, p.errf("unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.pos++
	return stmts, nil
}

// Expression precedence: || , &&, comparison, additive, multiplicative,
// unary, postfix (call/index), primary.

func (p *sparser) expr() (node, error) { return p.orExpr() }

func (p *sparser) orExpr() (node, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tkOp, "||") {
		t := p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &binop{line: t.line, op: "||", l: l, r: r}
	}
	return l, nil
}

func (p *sparser) andExpr() (node, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tkOp, "&&") {
		t := p.next()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &binop{line: t.line, op: "&&", l: l, r: r}
	}
	return l, nil
}

func (p *sparser) cmpExpr() (node, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tkOp {
			return l, nil
		}
		switch t.text {
		case "==", "!=", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = &binop{line: t.line, op: t.text, l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *sparser) addExpr() (node, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tkOp, "+") || p.at(tkOp, "-") {
		t := p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &binop{line: t.line, op: t.text, l: l, r: r}
	}
	return l, nil
}

func (p *sparser) mulExpr() (node, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tkOp, "*") || p.at(tkOp, "/") || p.at(tkOp, "%") {
		t := p.next()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &binop{line: t.line, op: t.text, l: l, r: r}
	}
	return l, nil
}

func (p *sparser) unaryExpr() (node, error) {
	t := p.cur()
	if t.kind == tkOp && (t.text == "-" || t.text == "!") {
		p.pos++
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &unop{line: t.line, op: t.text, x: x}, nil
	}
	return p.postfixExpr()
}

func (p *sparser) postfixExpr() (node, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.accept(tkPunct, "("):
			var args []node
			for !p.at(tkPunct, ")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(tkPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tkPunct, ")"); err != nil {
				return nil, err
			}
			x = &call{line: t.line, fn: x, args: args}
		case p.accept(tkPunct, "["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkPunct, "]"); err != nil {
				return nil, err
			}
			x = &index{line: t.line, x: x, idx: idx}
		case p.accept(tkPunct, "."):
			// m.key is sugar for m["key"].
			name, err := p.expect(tkIdent, "")
			if err != nil {
				return nil, p.errf("expected field name after '.'")
			}
			x = &index{line: t.line, x: x, idx: &strLit{line: t.line, v: name.text}}
		default:
			return x, nil
		}
	}
}

func (p *sparser) primary() (node, error) {
	t := p.cur()
	switch {
	case t.kind == tkNumber:
		p.pos++
		var v float64
		if _, err := fmt.Sscanf(t.text, "%g", &v); err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &numLit{line: t.line, v: v}, nil
	case t.kind == tkString:
		p.pos++
		return &strLit{line: t.line, v: t.text}, nil
	case t.kind == tkKeyword && (t.text == "true" || t.text == "false"):
		p.pos++
		return &boolLit{line: t.line, v: t.text == "true"}, nil
	case t.kind == tkKeyword && t.text == "nil":
		p.pos++
		return &nilLit{line: t.line}, nil
	case t.kind == tkIdent:
		p.pos++
		return &ident{line: t.line, name: t.text}, nil
	case p.accept(tkPunct, "("):
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	case p.accept(tkPunct, "["):
		lst := &listLit{line: t.line}
		for !p.at(tkPunct, "]") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			lst.elems = append(lst.elems, e)
			if !p.accept(tkPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tkPunct, "]"); err != nil {
			return nil, err
		}
		return lst, nil
	case p.accept(tkPunct, "{"):
		m := &mapLit{line: t.line}
		for !p.at(tkPunct, "}") {
			var key node
			kt := p.cur()
			switch kt.kind {
			case tkString:
				p.pos++
				key = &strLit{line: kt.line, v: kt.text}
			case tkIdent:
				p.pos++
				key = &strLit{line: kt.line, v: kt.text}
			default:
				return nil, p.errf("expected map key")
			}
			if _, err := p.expect(tkPunct, ":"); err != nil {
				return nil, err
			}
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			m.keys = append(m.keys, key)
			m.vals = append(m.vals, val)
			if !p.accept(tkPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tkPunct, "}"); err != nil {
			return nil, err
		}
		return m, nil
	default:
		return nil, p.errf("unexpected %q in expression", t.text)
	}
}
