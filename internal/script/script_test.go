package script

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func run(t *testing.T, src string) (Value, *Interp) {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	in := New(Limits{}, nil)
	v, err := in.Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return v, in
}

func runErr(t *testing.T, src string) error {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		return err
	}
	in := New(Limits{}, nil)
	_, err = in.Run(p)
	if err == nil {
		t.Fatalf("expected error for %q", src)
	}
	return err
}

func TestArithmetic(t *testing.T) {
	cases := map[string]float64{
		`return 1 + 2 * 3`:             7,
		`return (1 + 2) * 3`:           9,
		`return 10 / 4`:                2.5,
		`return 10 % 3`:                1,
		`return -5 + 3`:                -2,
		`return 2 * 3 - 4 / 2`:         4,
		`let x = 5 x = x + 1 return x`: 6,
	}
	for src, want := range cases {
		v, _ := run(t, src)
		if got, ok := v.(float64); !ok || got != want {
			t.Errorf("%s = %v, want %v", src, v, want)
		}
	}
}

func TestStringsAndConcat(t *testing.T) {
	v, _ := run(t, `return "turbo" + "-" + str(42)`)
	if v != "turbo-42" {
		t.Fatalf("got %v", v)
	}
	v, _ = run(t, `return upper("easia") + lower("XML")`)
	if v != "EASIAxml" {
		t.Fatalf("got %v", v)
	}
	v, _ = run(t, `return join(split("a,b,c", ","), "-")`)
	if v != "a-b-c" {
		t.Fatalf("got %v", v)
	}
}

func TestControlFlow(t *testing.T) {
	v, _ := run(t, `
		let total = 0
		for (i in range(10)) {
			if (i % 2 == 0) { total = total + i }
		}
		return total`)
	if v.(float64) != 20 {
		t.Fatalf("sum of evens = %v", v)
	}
	v, _ = run(t, `
		let n = 0
		while (true) {
			n = n + 1
			if (n >= 5) { break }
		}
		return n`)
	if v.(float64) != 5 {
		t.Fatalf("while/break = %v", v)
	}
	v, _ = run(t, `
		let kept = []
		for (i in range(6)) {
			if (i % 2 == 1) { continue }
			push(kept, i)
		}
		return len(kept)`)
	if v.(float64) != 3 {
		t.Fatalf("continue = %v", v)
	}
	v, _ = run(t, `
		let x = 3
		if (x > 5) { return "big" } else if (x > 1) { return "mid" } else { return "small" }`)
	if v != "mid" {
		t.Fatalf("else-if chain = %v", v)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	v, _ := run(t, `
		fn fib(n) {
			if (n < 2) { return n }
			return fib(n-1) + fib(n-2)
		}
		return fib(15)`)
	if v.(float64) != 610 {
		t.Fatalf("fib(15) = %v", v)
	}
	// Closures capture their defining scope.
	v, _ = run(t, `
		let base = 100
		fn addBase(x) { return x + base }
		return addBase(7)`)
	if v.(float64) != 107 {
		t.Fatalf("closure = %v", v)
	}
}

func TestListsAndMaps(t *testing.T) {
	v, _ := run(t, `
		let xs = [3, 1, 2]
		let ys = sort(xs)
		return str(ys[0]) + str(ys[1]) + str(ys[2])`)
	if v != "123" {
		t.Fatalf("sort = %v", v)
	}
	v, _ = run(t, `
		let m = {name: "ts42", size: 85}
		m["fmt"] = "TSF"
		return m.name + ":" + str(m.size) + ":" + m.fmt`)
	if v != "ts42:85:TSF" {
		t.Fatalf("map = %v", v)
	}
	v, _ = run(t, `
		let m = {b: 1, a: 2}
		return join(keys(m), ",")`)
	if v != "a,b" {
		t.Fatalf("keys = %v", v)
	}
	v, _ = run(t, `return has({x: 1}, "x") && !has({x: 1}, "y")`)
	if v != true {
		t.Fatalf("has = %v", v)
	}
	v, _ = run(t, `
		let xs = [1, 2] + [3]
		return len(xs)`)
	if v.(float64) != 3 {
		t.Fatalf("list concat = %v", v)
	}
}

func TestPrintOutput(t *testing.T) {
	_, in := run(t, `
		print("slice", 3, "of", "u")
		print("done")`)
	want := "slice 3 of u\ndone\n"
	if in.Output() != want {
		t.Fatalf("output = %q", in.Output())
	}
}

func TestHostFunctions(t *testing.T) {
	p, err := Parse(`return dataset_n("ts1.tsf") * 2`)
	if err != nil {
		t.Fatal(err)
	}
	in := New(Limits{}, map[string]HostFunc{
		"dataset_n": func(in *Interp, args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("want 1 arg")
			}
			return 64.0, nil
		},
	})
	v, err := in.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != 128 {
		t.Fatalf("host call = %v", v)
	}
}

func TestGlobalsInjection(t *testing.T) {
	p, _ := Parse(`return "processing " + filename`)
	in := New(Limits{}, nil)
	in.SetGlobal("filename", "ts42.tsf")
	v, err := in.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if v != "processing ts42.tsf" {
		t.Fatalf("got %v", v)
	}
}

// --- sandbox enforcement ---

func TestStepBudgetStopsInfiniteLoop(t *testing.T) {
	p, _ := Parse(`while (true) { }`)
	in := New(Limits{MaxSteps: 10_000}, nil)
	_, err := in.Run(p)
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
}

func TestHeapBudgetStopsAllocationBomb(t *testing.T) {
	p, _ := Parse(`
		let xs = []
		while (true) { push(xs, 1) }`)
	in := New(Limits{MaxSteps: 100_000_000, MaxHeap: 10_000}, nil)
	_, err := in.Run(p)
	if !errors.Is(err, ErrHeapBudget) {
		t.Fatalf("err = %v, want ErrHeapBudget", err)
	}
}

func TestOutputBudgetStopsPrintBomb(t *testing.T) {
	p, _ := Parse(`
		while (true) { print("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx") }`)
	in := New(Limits{MaxSteps: 100_000_000, MaxOutput: 1024}, nil)
	_, err := in.Run(p)
	if !errors.Is(err, ErrOutputBudget) {
		t.Fatalf("err = %v, want ErrOutputBudget", err)
	}
}

func TestNoAmbientAuthority(t *testing.T) {
	// Without injected host functions, there is no way to touch files,
	// the network, or the archive: those names simply do not exist.
	for _, src := range []string{
		`return open("/etc/passwd")`,
		`return readFile("x")`,
		`return exec("rm -rf /")`,
	} {
		err := runErr(t, src)
		if !strings.Contains(err.Error(), "undefined variable") {
			t.Errorf("%s: err = %v", src, err)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []string{
		`return 1 / 0`,
		`return [1][5]`,
		`return [1][-1]`,
		`return "a" - "b"`,
		`x = 1`, // assignment without let
		`return nope`,
		`return 5(3)`,
		`let m = {} return m[0]`,
	}
	for _, src := range cases {
		runErr(t, src)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`let = 5`,
		`fn () {}`,
		`if x { }`,
		`while (true) {`,
		`return "unterminated`,
		`let x = @`,
		`for (x of xs) {}`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no parse error for %q", src)
		}
	}
}

func TestComments(t *testing.T) {
	v, _ := run(t, `
		// line comment
		# hash comment
		let x = 1 // trailing
		return x`)
	if v.(float64) != 1 {
		t.Fatalf("got %v", v)
	}
}

// Property: integer arithmetic in EASL matches Go within float64.
func TestArithmeticProperty(t *testing.T) {
	f := func(a, b int16) bool {
		src := fmt.Sprintf("return %d + %d * %d", a, b, a)
		p, err := Parse(src)
		if err != nil {
			return false
		}
		in := New(Limits{}, nil)
		v, err := in.Run(p)
		if err != nil {
			return false
		}
		want := float64(a) + float64(b)*float64(a)
		return v.(float64) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRealisticPostProcessingScript runs the kind of program a user
// would upload: compute statistics over a (host-provided) slice.
func TestRealisticPostProcessingScript(t *testing.T) {
	src := `
		fn mean(xs) {
			let total = 0
			for (x in xs) { total = total + x }
			return total / len(xs)
		}
		fn rms(xs) {
			let total = 0
			for (x in xs) { total = total + x * x }
			return sqrt(total / len(xs))
		}
		let data = loadSlice(filename, "u", "z", 4)
		print("points:", len(data))
		print("mean:", mean(data))
		print("rms:", rms(data))
		return rms(data)`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	in := New(DefaultLimits, map[string]HostFunc{
		"loadSlice": func(in *Interp, args []Value) (Value, error) {
			if len(args) != 4 {
				return nil, fmt.Errorf("loadSlice(file, field, axis, index)")
			}
			return &List{Elems: []Value{3.0, 4.0, 0.0, 0.0}}, nil
		},
	})
	in.SetGlobal("filename", "ts42.tsf")
	v, err := in.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != 2.5 { // sqrt((9+16)/4)
		t.Fatalf("rms = %v", v)
	}
	if !strings.Contains(in.Output(), "points: 4") {
		t.Fatalf("output = %q", in.Output())
	}
}

func TestByteStringBuiltins(t *testing.T) {
	v, _ := run(t, `return ord("A")`)
	if v.(float64) != 65 {
		t.Fatalf("ord = %v", v)
	}
	v, _ = run(t, `return chr(66)`)
	if v != "B" {
		t.Fatalf("chr = %v", v)
	}
	v, _ = run(t, `return ord(chr(200))`)
	if v.(float64) != 200 {
		t.Fatalf("ord∘chr = %v", v)
	}
	v, _ = run(t, `return substr("turbulence", 2, 4)`)
	if v != "rbul" {
		t.Fatalf("substr = %v", v)
	}
	v, _ = run(t, `return substr("abc", 1, 99)`)
	if v != "bc" {
		t.Fatalf("substr overrun = %v", v)
	}
	runErr(t, `return ord("")`)
	runErr(t, `return chr(999)`)
	runErr(t, `return substr("abc", 9, 1)`)
}

// Property: ord/chr invert for all byte values.
func TestOrdChrProperty(t *testing.T) {
	f := func(b uint8) bool {
		src := fmt.Sprintf(`return ord(chr(%d))`, b)
		p, err := Parse(src)
		if err != nil {
			return false
		}
		in := New(Limits{}, nil)
		v, err := in.Run(p)
		return err == nil && v.(float64) == float64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Fatal(err)
	}
}
