// Turbulence campaign: archive a multi-timestep simulation the way the
// UK Turbulence Consortium would — one TSF snapshot per timestep,
// archived on the file server closest to the compute resource — then
// use the archive: QBE searches with restrictions, primary/foreign-key
// browsing, and the bandwidth arithmetic that motivated the paper.
//
//	go run ./examples/turbulence
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dlfs"
	"repro/internal/med"
	"repro/internal/netsim"
	"repro/internal/turb"
)

const (
	gridN     = 24
	timesteps = 10
)

func main() {
	secret := []byte("campaign-secret")
	work, err := os.MkdirTemp("", "easia-campaign-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	archive, err := core.Open(core.Config{Secret: secret, WorkRoot: work + "/ops"})
	if err != nil {
		log.Fatal(err)
	}
	defer archive.Close()
	auth, err := med.NewTokenAuthority(secret, 0)
	if err != nil {
		log.Fatal(err)
	}
	// Two file servers: the compute site (holds results) and the
	// visualisation site (holds codes and derived images).
	attach := func(host, dir string) *dlfs.Manager {
		store, err := dlfs.NewStore(dir)
		if err != nil {
			log.Fatal(err)
		}
		m := dlfs.NewManager(host, store, auth)
		archive.AttachFileServer(core.WrapManager(m))
		return m
	}
	compute := attach("compute.site:80", work+"/compute")
	_ = attach("vis.site:80", work+"/vis")

	if err := archive.InitTurbulenceSchema(); err != nil {
		log.Fatal(err)
	}
	mustExec(archive, `INSERT INTO AUTHOR VALUES ('A1', 'Turbulence Consortium', 'UK', 'turbulence@example.org')`)
	mustExec(archive, fmt.Sprintf(`INSERT INTO SIMULATION VALUES ('S1', 'A1',
		'Decaying Taylor-Green vortex', 'Campaign of %d timesteps on a %d^3 grid.',
		%d, 100.0, %d, NOW())`, timesteps, gridN, gridN, timesteps))

	// Archive every timestep where it was generated.
	var totalBytes int64
	for step := 0; step < timesteps; step++ {
		var buf bytes.Buffer
		snap := turb.Generate(gridN, step*10, 7)
		if _, err := snap.WriteTo(&buf); err != nil {
			log.Fatal(err)
		}
		path := fmt.Sprintf("/runs/s1/ts%03d.tsf", step)
		url, err := archive.ArchiveFile("compute.site:80", path, bytes.NewReader(buf.Bytes()))
		if err != nil {
			log.Fatal(err)
		}
		mustExec(archive, fmt.Sprintf(
			`INSERT INTO RESULT_FILE VALUES ('ts%03d.tsf', 'S1', %d, 'u,v,w,p', 'TSF', %d, DLVALUE('%s'))`,
			step, step*10, buf.Len(), url))
		totalBytes += int64(buf.Len())
	}
	fmt.Printf("archived %d timesteps (%d bytes total) on compute.site; linked files: %d\n",
		timesteps, totalBytes, compute.Store().LinkedCount())

	if _, err := archive.GenerateXUIS("TURBULENCE"); err != nil {
		log.Fatal(err)
	}

	// --- searching: the QBE queries a scientist would issue ---
	examples := []core.QBE{
		{Table: "RESULT_FILE",
			Select:       []string{"FILE_NAME", "TIMESTEP", "FILE_SIZE"},
			Restrictions: []core.Restriction{{Column: "TIMESTEP", Op: ">=", Value: "50"}},
			OrderBy:      "TIMESTEP"},
		{Table: "SIMULATION",
			Restrictions: []core.Restriction{{Column: "TITLE", Op: "CONTAINS", Value: "Taylor"}}},
	}
	for _, q := range examples {
		rs, err := archive.Search(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("QBE on %-12s -> %d row(s)\n", q.Table, len(rs.Rows))
	}

	// --- browsing: the hyperlinks of the web interface ---
	author, err := archive.BrowseFK("AUTHOR", "AUTHOR_KEY", "A1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FK browse: simulation S1 -> author %q\n", author.Row(0)["AUTHOR.NAME"].AsString())
	children, err := archive.BrowsePK("RESULT_FILE", "SIMULATION_KEY", "S1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PK browse: simulation S1 referenced by %d result files\n", len(children.Rows))

	// --- aggregate metadata queries the engine answers directly ---
	rows, err := archive.DB.Query(`
		SELECT MEASUREMENT, COUNT(*) AS files, SUM(FILE_SIZE) AS bytes
		FROM RESULT_FILE GROUP BY MEASUREMENT`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows.Data {
		fmt.Printf("aggregate: measurement=%s files=%s bytes=%s\n",
			r[0].AsString(), r[1].AsString(), r[2].AsString())
	}

	// --- the motivating arithmetic: what would this campaign cost over
	// the paper's measured WAN? ---
	fmt.Println("\nWAN cost of this campaign under the paper's measured rates:")
	sched := netsim.SuperJANET1999
	full := turb.FileBytes(gridN) * int64(timesteps)
	slice := int64(gridN*gridN) * int64(timesteps) // one PGM per timestep
	for _, p := range []netsim.Period{netsim.Day, netsim.Evening} {
		up := netsim.TransferTimeExact(full, sched.Rate(p, netsim.ToArchive))
		down := netsim.TransferTimeExact(full, sched.Rate(p, netsim.FromArchive))
		reduced := netsim.TransferTimeExact(slice, sched.Rate(p, netsim.FromArchive))
		fmt.Printf("  %-8s upload-all %-10s download-all %-10s slices-only %s\n",
			p, netsim.FormatDuration(up), netsim.FormatDuration(down), netsim.FormatDuration(reduced))
	}
	fmt.Println("(EASIA avoids the upload column entirely and turns the download column into the slices column)")

	// --- physics sanity: the archived campaign shows the expected decay ---
	fmt.Println("\nkinetic energy decay across the archived campaign:")
	for _, step := range []int{0, 5, 9} {
		snap := turb.Generate(gridN, step*10, 7)
		fmt.Printf("  timestep %3d: E = %.6f\n", step*10, snap.KineticEnergy())
	}
}

func mustExec(a *core.Archive, sql string) {
	if _, err := a.DB.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
