// Quickstart: assemble a complete in-process EASIA archive — metadata
// database, SQL/MED coordinator, one file-server host — archive a real
// turbulence dataset where it was "generated", search it with QBE,
// download it through an encrypted access token, and see the SQL/MED
// guarantees in action.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dlfs"
	"repro/internal/med"
	"repro/internal/turb"
)

func main() {
	secret := []byte("quickstart-secret")
	work, err := os.MkdirTemp("", "easia-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// 1. The database server host: metadata + SQL/MED coordination.
	archive, err := core.Open(core.Config{Secret: secret, WorkRoot: work + "/ops"})
	if err != nil {
		log.Fatal(err)
	}
	defer archive.Close()

	// 2. One file-server host (in-process; see examples/distributed for
	// real HTTP daemons). It shares the token secret with the archive.
	auth, err := med.NewTokenAuthority(secret, 0)
	if err != nil {
		log.Fatal(err)
	}
	store, err := dlfs.NewStore(work + "/fs1")
	if err != nil {
		log.Fatal(err)
	}
	fs1 := dlfs.NewManager("fs1.example.org:80", store, auth)
	archive.AttachFileServer(core.WrapManager(fs1))

	// 3. The paper's five-table turbulence schema.
	if err := archive.InitTurbulenceSchema(); err != nil {
		log.Fatal(err)
	}
	mustExec(archive, `INSERT INTO AUTHOR VALUES ('A1', 'Papiani', 'University of Southampton', 'papiani@computer.org')`)
	mustExec(archive, `INSERT INTO SIMULATION VALUES ('S1', 'A1', 'Turbulent channel flow',
		'Quickstart demo simulation.', 32, 1395.0, 1, NOW())`)

	// 4. Generate a 32³ snapshot and archive it *where it was generated*
	// (the file stays on fs1; only the DATALINK goes into the database).
	var tsf bytes.Buffer
	if _, err := turb.Generate(32, 0, 42).WriteTo(&tsf); err != nil {
		log.Fatal(err)
	}
	url, err := archive.ArchiveFile("fs1.example.org:80", "/vol0/run1/ts0.tsf", bytes.NewReader(tsf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	mustExec(archive, fmt.Sprintf(
		`INSERT INTO RESULT_FILE VALUES ('ts0.tsf', 'S1', 0, 'u,v,w,p', 'TSF', %d, DLVALUE('%s'))`,
		tsf.Len(), url))
	fmt.Printf("archived %d-byte dataset as %s\n", tsf.Len(), url)

	// The INSERT ran the two-phase link protocol: the file is now under
	// database control and cannot be deleted or renamed.
	if err := store.Remove("/vol0/run1/ts0.tsf"); err != nil {
		fmt.Printf("SQL/MED integrity: delete refused -> %v\n", err)
	}

	// 5. Generate the XUIS (the schema-driven UI specification).
	spec, err := archive.GenerateXUIS("TURBULENCE")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated XUIS with %d tables\n", len(spec.Tables))

	// 6. Search with QBE, exactly what the web query form submits.
	rs, err := archive.Search(core.QBE{
		Table:        "RESULT_FILE",
		Restrictions: []core.Restriction{{Column: "MEASUREMENT", Op: "CONTAINS", Value: "u,v"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QBE search matched %d row(s)\n", len(rs.Rows))

	// 7. DATALINK browsing: an authorised user gets a URL carrying an
	// encrypted, expiring access token; guests do not.
	user := core.User{Name: "papiani"}
	tokURL, err := archive.DownloadURL(url, user)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tokenized download URL:\n  %s\n", tokURL)
	if _, err := archive.DownloadURL(url, core.User{Name: "guest", Guest: true}); err != nil {
		fmt.Printf("guest policy: %v\n", err)
	}

	rc, err := archive.OpenDownload(tokURL)
	if err != nil {
		log.Fatal(err)
	}
	n, err := io.Copy(io.Discard, rc)
	rc.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("downloaded %d bytes through the token-gated file server\n", n)

	// 8. Post-process server-side instead of downloading: compute slice
	// statistics next to the data (see examples/operations for the full
	// operations machinery).
	snap, err := turb.Read(bytes.NewReader(tsf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	slice, err := snap.ExtractSlice("u", turb.AxisZ, 16)
	if err != nil {
		log.Fatal(err)
	}
	st := slice.Stats()
	fmt.Printf("server-side slice stats: %d points, rms=%.4f (shipping %d bytes instead of %d)\n",
		st.Count, st.RMS, slice.Bytes(), tsf.Len())
}

func mustExec(a *core.Archive, sql string) {
	if _, err := a.DB.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
