// Distributed deployment: the paper's architecture over real HTTP,
// with the replicated file-server tier. Three Data Links File Manager
// daemons run on loopback listeners; the archive server addresses them
// as ONE logical DATALINK host through a cluster.ReplicaSet — every
// file is placed on two daemons, link-control 2PC fans out over the
// wire, and reads fail over when a daemon drops off the network.
//
// The example exercises the two-phase link protocol over the wire,
// token-gated downloads, integrity enforcement against a remote host,
// a netsim-injected partition with failover reads and anti-entropy
// re-replication after the partition heals, and a coordinated backup.
//
//	go run ./examples/distributed
package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/dlfs"
	"repro/internal/dlfs/cluster"
	"repro/internal/med"
	"repro/internal/netsim"
	"repro/internal/turb"
)

// logicalHost is the single host name DATALINK URLs carry; the replica
// set maps it onto the physical daemons.
const logicalHost = "archive-fs.sim:80"

func main() {
	secret := []byte("distributed-secret")
	work, err := os.MkdirTemp("", "easia-distributed-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// --- file-server hosts: real daemons on loopback ---
	startDaemon := func(name, dir string) daemon {
		auth, err := med.NewTokenAuthority(secret, 0)
		if err != nil {
			log.Fatal(err)
		}
		store, err := dlfs.NewStore(dir)
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		host := ln.Addr().String()
		mgr := dlfs.NewManager(host, store, auth)
		srv := &http.Server{Handler: dlfs.NewServer(mgr)}
		go srv.Serve(ln) //nolint:errcheck // closed on shutdown
		fmt.Printf("%s daemon listening on %s (root %s)\n", name, host, dir)
		return daemon{host: host, store: store, stop: func() { srv.Close() }}
	}
	daemons := []daemon{
		startDaemon("fs1", work+"/fs1"),
		startDaemon("fs2", work+"/fs2"),
		startDaemon("fs3", work+"/fs3"),
	}
	for _, d := range daemons {
		defer d.stop()
	}

	// --- archive server host ---
	archive, err := core.Open(core.Config{
		DBDir:    work + "/db",
		Secret:   secret,
		WorkRoot: work + "/ops",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer archive.Close()

	// The replica set: one logical DATALINK host over the three
	// daemons, replication factor 2, traffic routed through a netsim
	// fault controller so we can sever a WAN path below.
	faults := netsim.NewFaults()
	rs := cluster.New(cluster.Config{
		Host:              logicalHost,
		ReplicationFactor: 2,
		Tokens:            archive.Tokens,
	})
	for _, d := range daemons {
		client := dlfs.NewClient(d.host, "http://"+d.host, faults.Client(nil))
		if err := rs.Add(cluster.NewClientNode(client)); err != nil {
			log.Fatal(err)
		}
	}
	archive.AttachFileServer(rs)

	if err := archive.InitTurbulenceSchema(); err != nil {
		log.Fatal(err)
	}
	mustExec(archive, `INSERT INTO AUTHOR VALUES ('A1', 'Papiani', 'Southampton', NULL)`)
	mustExec(archive, `INSERT INTO SIMULATION VALUES ('S1', 'A1', 'Distributed demo', NULL, 16, 100.0, 2, NOW())`)

	// Archive two datasets. Each lands on 2 of the 3 daemons; the
	// single central database manages all of them through one host name.
	for i := 0; i < 2; i++ {
		var buf bytes.Buffer
		if _, err := turb.Generate(16, i, int64(i)).WriteTo(&buf); err != nil {
			log.Fatal(err)
		}
		path := fmt.Sprintf("/runs/s1/ts%d.tsf", i)
		url, err := archive.ArchiveFile(logicalHost, path, bytes.NewReader(buf.Bytes()))
		if err != nil {
			log.Fatal(err)
		}
		mustExec(archive, fmt.Sprintf(
			`INSERT INTO RESULT_FILE VALUES ('ts%d.tsf', 'S1', %d, 'u,v,w,p', 'TSF', %d, DLVALUE('%s'))`,
			i, i, buf.Len(), url))
		fmt.Printf("archived %s on replicas %v\n", url, holders(daemons, path))
	}

	// --- integrity enforcement across the wire, via the set ---
	if err := rs.Remove("/runs/s1/ts0.tsf"); errors.Is(err, dlfs.ErrLinked) {
		fmt.Println("remote delete of a linked file -> refused by the tier")
	} else {
		log.Fatalf("integrity breach: %v", err)
	}
	if err := rs.Rename("/runs/s1/ts0.tsf", "/runs/s1/sneaky.tsf"); errors.Is(err, dlfs.ErrLinked) {
		fmt.Println("remote rename of a linked file -> refused by the tier")
	} else {
		log.Fatalf("integrity breach: %v", err)
	}

	// --- sever the WAN path to ts0's PRIMARY replica ---
	path := "/runs/s1/ts0.tsf"
	victim := rs.Replicas(path)[0]
	faults.Partition(victim)
	fmt.Printf("netsim: partitioned %s (primary for %s)\n", victim, path)

	// Token-gated download still works: the read fails over to the
	// surviving replica, token check intact.
	rows, err := archive.Search(core.QBE{Table: "RESULT_FILE", OrderBy: "TIMESTEP"})
	if err != nil {
		log.Fatal(err)
	}
	dl := rows.Row(0)["RESULT_FILE.DOWNLOAD_RESULT"].Str()
	tokURL, err := archive.DownloadURL(dl, core.User{Name: "papiani"})
	if err != nil {
		log.Fatal(err)
	}
	rc, err := archive.OpenDownload(tokURL)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := io.Copy(io.Discard, rc)
	rc.Close()
	fmt.Printf("token-gated download during the partition: %d bytes (failovers so far: %d)\n",
		n, rs.Stats().Failovers)
	if _, err := archive.OpenDownload(dl); err != nil {
		fmt.Printf("tokenless download -> still refused (%v)\n", shortErr(err))
	} else {
		log.Fatal("tokenless download succeeded")
	}

	// New links keep committing through 2PC while the replica is dark.
	var buf bytes.Buffer
	if _, err := turb.Generate(16, 2, 2).WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	url, err := archive.ArchiveFile(logicalHost, "/runs/s1/ts2.tsf", bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	mustExec(archive, fmt.Sprintf(
		`INSERT INTO RESULT_FILE VALUES ('ts2.tsf', 'S1', 2, 'u,v,w,p', 'TSF', %d, DLVALUE('%s'))`,
		buf.Len(), url))
	fmt.Printf("new link committed during the partition: %s (under-replicated: %v)\n",
		url, rs.UnderReplicated())

	// --- the partition heals: anti-entropy restores full replication ---
	faults.Heal(victim)
	rs.Probe()
	stats, err := rs.Repair()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition healed; repair copied %d files, relinked %d (pending %d)\n",
		stats.Copied, stats.Relinked, stats.Pending)

	// --- a failed transaction leaves no remote link state ---
	if _, err := archive.DB.Exec(
		`INSERT INTO RESULT_FILE VALUES ('ghost.tsf', 'S1', 9, 'u', 'TSF', 0,
			DLVALUE('http://` + logicalHost + `/runs/s1/ghost.tsf'))`); err != nil {
		fmt.Printf("insert referencing a missing remote file -> refused (%v)\n", shortErr(err))
	} else {
		log.Fatal("dangling insert accepted")
	}

	// --- coordinated backup of database + linked files ---
	// The set's members are remote clients (no backup interface), so
	// back up through managers bound directly to the daemons' stores —
	// on a real deployment each host runs this locally.
	backupDir := work + "/backup"
	auth, _ := med.NewTokenAuthority(secret, 0)
	parts := []med.BackupParticipant{}
	for _, d := range daemons {
		parts = append(parts, dlfs.NewManager(d.host, d.store, auth))
	}
	captured, err := med.BackupSet{Dir: backupDir}.Backup(archive.DB, work+"/db", parts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordinated backup captured the database plus %d linked replicas into %s\n", captured, backupDir)
}

// daemon is one loopback file-server process.
type daemon struct {
	host  string
	store *dlfs.Store
	stop  func()
}

// holders reports which daemons hold path on disk.
func holders(daemons []daemon, path string) []string {
	var out []string
	for _, d := range daemons {
		if _, err := d.store.Stat(path); err == nil {
			out = append(out, d.host)
		}
	}
	return out
}

func mustExec(a *core.Archive, sql string) {
	if _, err := a.DB.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}

func shortErr(err error) string {
	s := err.Error()
	if len(s) > 80 {
		s = s[:80] + "…"
	}
	return s
}
