// Distributed deployment: the paper's architecture over real HTTP.
// Two Data Links File Manager daemons run on loopback listeners; the
// archive server talks to them through dlfs.Client exactly as it would
// across the Internet. The example exercises the two-phase link
// protocol over the wire, token-gated downloads, integrity enforcement
// against a remote host, and a coordinated backup.
//
//	go run ./examples/distributed
package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/dlfs"
	"repro/internal/med"
	"repro/internal/turb"
)

func main() {
	secret := []byte("distributed-secret")
	work, err := os.MkdirTemp("", "easia-distributed-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// --- file-server hosts: real daemons on loopback ---
	startDaemon := func(name, dir string) (host string, mgr *dlfs.Manager, shutdown func()) {
		auth, err := med.NewTokenAuthority(secret, 0)
		if err != nil {
			log.Fatal(err)
		}
		store, err := dlfs.NewStore(dir)
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		host = ln.Addr().String()
		mgr = dlfs.NewManager(host, store, auth)
		srv := &http.Server{Handler: dlfs.NewServer(mgr)}
		go srv.Serve(ln) //nolint:errcheck // closed on shutdown
		fmt.Printf("%s daemon listening on %s (root %s)\n", name, host, dir)
		return host, mgr, func() { srv.Close() }
	}
	host1, _, stop1 := startDaemon("fs1", work+"/fs1")
	defer stop1()
	host2, _, stop2 := startDaemon("fs2", work+"/fs2")
	defer stop2()

	// --- archive server host ---
	archive, err := core.Open(core.Config{
		DBDir:    work + "/db",
		Secret:   secret,
		WorkRoot: work + "/ops",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer archive.Close()
	client1 := dlfs.NewClient(host1, "http://"+host1, nil)
	client2 := dlfs.NewClient(host2, "http://"+host2, nil)
	archive.AttachFileServer(core.WrapClient(client1))
	archive.AttachFileServer(core.WrapClient(client2))

	if err := archive.InitTurbulenceSchema(); err != nil {
		log.Fatal(err)
	}
	mustExec(archive, `INSERT INTO AUTHOR VALUES ('A1', 'Papiani', 'Southampton', NULL)`)
	mustExec(archive, `INSERT INTO SIMULATION VALUES ('S1', 'A1', 'Distributed demo', NULL, 16, 100.0, 2, NOW())`)

	// Archive one dataset on each host — data lives closest to where it
	// is used, and both are managed by the single central database.
	for i, host := range []string{host1, host2} {
		var buf bytes.Buffer
		if _, err := turb.Generate(16, i, int64(i)).WriteTo(&buf); err != nil {
			log.Fatal(err)
		}
		path := fmt.Sprintf("/runs/s1/ts%d.tsf", i)
		url, err := archive.ArchiveFile(host, path, bytes.NewReader(buf.Bytes()))
		if err != nil {
			log.Fatal(err)
		}
		mustExec(archive, fmt.Sprintf(
			`INSERT INTO RESULT_FILE VALUES ('ts%d.tsf', 'S1', %d, 'u,v,w,p', 'TSF', %d, DLVALUE('%s'))`,
			i, i, buf.Len(), url))
		fmt.Printf("archived %s (link managed over HTTP)\n", url)
	}

	// --- integrity enforcement across the wire ---
	if err := client1.Remove("/runs/s1/ts0.tsf"); errors.Is(err, dlfs.ErrLinked) {
		fmt.Println("remote delete of a linked file -> refused by the daemon")
	} else {
		log.Fatalf("integrity breach: %v", err)
	}
	if err := client1.Rename("/runs/s1/ts0.tsf", "/runs/s1/sneaky.tsf"); errors.Is(err, dlfs.ErrLinked) {
		fmt.Println("remote rename of a linked file -> refused by the daemon")
	} else {
		log.Fatalf("integrity breach: %v", err)
	}

	// --- token-gated download over HTTP ---
	rs, err := archive.Search(core.QBE{Table: "RESULT_FILE", OrderBy: "TIMESTEP"})
	if err != nil {
		log.Fatal(err)
	}
	dl := rs.Row(0)["RESULT_FILE.DOWNLOAD_RESULT"].Str()
	tokURL, err := archive.DownloadURL(dl, core.User{Name: "papiani"})
	if err != nil {
		log.Fatal(err)
	}
	rc, err := archive.OpenDownload(tokURL)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := io.Copy(io.Discard, rc)
	rc.Close()
	fmt.Printf("token-gated HTTP download: %d bytes\n", n)
	if _, err := archive.OpenDownload(dl); err != nil {
		fmt.Printf("tokenless HTTP download -> refused (%v)\n", shortErr(err))
	} else {
		log.Fatal("tokenless download succeeded")
	}

	// --- a failed transaction leaves no remote link state ---
	if _, err := archive.DB.Exec(
		`INSERT INTO RESULT_FILE VALUES ('ghost.tsf', 'S1', 9, 'u', 'TSF', 0,
			DLVALUE('http://` + host1 + `/runs/s1/ghost.tsf'))`); err != nil {
		fmt.Printf("insert referencing a missing remote file -> refused (%v)\n", shortErr(err))
	} else {
		log.Fatal("dangling insert accepted")
	}

	// --- coordinated backup of database + linked files ---
	// (The dlfs.Client does not expose backup; in-process managers on
	// each host would run it. Here we back up through fresh managers
	// bound to the same stores to show the mechanism.)
	backupDir := work + "/backup"
	auth, _ := med.NewTokenAuthority(secret, 0)
	store1, err := dlfs.NewStore(work + "/fs1")
	if err != nil {
		log.Fatal(err)
	}
	store2, err := dlfs.NewStore(work + "/fs2")
	if err != nil {
		log.Fatal(err)
	}
	parts := []med.BackupParticipant{
		dlfs.NewManager(host1, store1, auth),
		dlfs.NewManager(host2, store2, auth),
	}
	captured, err := med.BackupSet{Dir: backupDir}.Backup(archive.DB, work+"/db", parts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordinated backup captured the database plus %d linked files into %s\n", captured, backupDir)
}

func mustExec(a *core.Archive, sql string) {
	if _, err := a.DB.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}

func shortErr(err error) string {
	s := err.Error()
	if len(s) > 80 {
		s = s[:80] + "…"
	}
	return s
}
