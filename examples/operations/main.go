// Operations: the paper's server-side post-processing machinery end to
// end — an archived EASL code bound to datasets through XUIS markup
// (with a generated parameter form), an external URL operation (the
// paper's NCSA SDB splice), authorised code upload with the sandbox
// refusing hostile programs, and the future-work result cache with
// execution statistics.
//
//	go run ./examples/operations
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dlfs"
	"repro/internal/med"
	"repro/internal/ops"
	"repro/internal/script"
	"repro/internal/turb"
	"repro/internal/xuis"
)

const getImage = `
let axis = params["slice"]
let comp = params["type"]
if (axis == nil) { axis = "z" }
if (comp == nil) { comp = "u" }
let info = datasetInfo(filename)
let mid = floor(info.n / 2)
let bytes = writeImage("slice.pgm", filename, comp, axis, mid)
let st = sliceStats(filename, comp, axis, mid)
print("rendered", comp, "slice", axis, "=", mid, "->", bytes, "bytes, rms", st.rms)
`

func main() {
	secret := []byte("operations-secret")
	work, err := os.MkdirTemp("", "easia-operations-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	archive, err := core.Open(core.Config{
		Secret:   secret,
		WorkRoot: work + "/ops",
		ScriptLimits: script.Limits{
			MaxSteps: 5_000_000, MaxHeap: 32 << 20, MaxOutput: 1 << 20,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer archive.Close()
	auth, err := med.NewTokenAuthority(secret, 0)
	if err != nil {
		log.Fatal(err)
	}
	store, err := dlfs.NewStore(work + "/fs1")
	if err != nil {
		log.Fatal(err)
	}
	archive.AttachFileServer(core.WrapManager(dlfs.NewManager("fs1.site:80", store, auth)))
	if err := archive.InitTurbulenceSchema(); err != nil {
		log.Fatal(err)
	}
	mustExec(archive, `INSERT INTO AUTHOR VALUES ('A1', 'Wason', 'Southampton', NULL)`)
	mustExec(archive, `INSERT INTO SIMULATION VALUES ('S1', 'A1', 'Operations demo', NULL, 24, 100.0, 1, NOW())`)

	var tsf bytes.Buffer
	if _, err := turb.Generate(24, 0, 3).WriteTo(&tsf); err != nil {
		log.Fatal(err)
	}
	dsURL, err := archive.ArchiveFile("fs1.site:80", "/runs/s1/ts0.tsf", bytes.NewReader(tsf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	mustExec(archive, fmt.Sprintf(
		`INSERT INTO RESULT_FILE VALUES ('ts0.tsf', 'S1', 0, 'u,v,w,p', 'TSF', %d, DLVALUE('%s'))`,
		tsf.Len(), dsURL))
	// The post-processing code is itself archived as a DATALINK.
	codeURL, err := archive.ArchiveFile("fs1.site:80", "/codes/getimage.easl", strings.NewReader(getImage))
	if err != nil {
		log.Fatal(err)
	}
	mustExec(archive, fmt.Sprintf(
		`INSERT INTO CODE_FILE VALUES ('GetImage.easl', 'S1', 'EASL', 'Slice renderer', DLVALUE('%s'))`, codeURL))

	// A stand-in for NCSA's Scientific Data Browser: any HTTP service
	// can be spliced into the archive purely through XUIS markup.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	sdb := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "SDB view of %s (view=%s)\n", r.URL.Query().Get("dataset"), r.URL.Query().Get("view"))
	})}
	go sdb.Serve(ln) //nolint:errcheck // closed on exit
	defer sdb.Close()

	// Bind both operations and the upload capability through the XUIS.
	spec, err := archive.GenerateXUIS("TURBULENCE")
	if err != nil {
		log.Fatal(err)
	}
	must(spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", &xuis.Operation{
		Name: "GetImage", Type: "EASL", Filename: "getimage.easl", Format: "easl", GuestAccess: true,
		Location: &xuis.Location{DatabaseResult: &xuis.DatabaseResult{
			ColID:      "CODE_FILE.DOWNLOAD_CODE_FILE",
			Conditions: []xuis.Condition{{ColID: "CODE_FILE.CODE_NAME", Eq: "'GetImage.easl'"}},
		}},
		Description: "Visualise one slice of the dataset",
		Parameters: &xuis.Parameters{Params: []xuis.Param{
			{Variable: xuis.Variable{
				Description: "Select the slice you wish to visualise:",
				Select: &xuis.Select{Name: "slice", Size: 3, Options: []xuis.Option{
					{Value: "x", Label: "x plane"}, {Value: "y", Label: "y plane"}, {Value: "z", Label: "z plane"},
				}},
			}},
		}},
	}))
	must(spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", &xuis.Operation{
		Name: "SDB", GuestAccess: true,
		Location:    &xuis.Location{URL: "http://" + ln.Addr().String() + "/servlet/SDBservlet"},
		Description: "External Scientific Data Browser service",
	}))
	must(spec.SetUpload("RESULT_FILE", "DOWNLOAD_RESULT", &xuis.Upload{
		Type: "EASL", Format: "easl", GuestAccess: false,
	}))
	must(archive.SetSpec(spec))
	archive.Ops().SetCaching(true)

	key := map[string]string{"FILE_NAME": "ts0.tsf", "SIMULATION_KEY": "S1"}
	guest := core.User{Name: "guest", Guest: true}
	scientist := core.User{Name: "wason"}

	// 1. The archived operation, run twice to show the result cache.
	for i := 0; i < 2; i++ {
		res, err := archive.RunOperation("GetImage", "RESULT_FILE.DOWNLOAD_RESULT", "RESULT_FILE",
			key, map[string]string{"slice": "z", "type": "u"}, guest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GetImage run %d: %s(cache=%v) -> %d bytes shipped instead of %d\n",
			i+1, strings.TrimSpace(res.Stdout), res.FromCache, res.TotalOutputBytes(), tsf.Len())
	}

	// 2. The URL operation: the external service receives the DATALINK.
	res, err := archive.RunOperation("SDB", "RESULT_FILE.DOWNLOAD_RESULT", "RESULT_FILE", key,
		map[string]string{"view": "contours"}, guest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SDB operation: %s", res.Stdout)

	// 3. Code upload: a scientist's own analysis runs in the sandbox.
	uploaded := []byte(`
fn mean(xs) {
	let total = 0
	for (x in xs) { total = total + x }
	return total / len(xs)
}
let data = loadSlice(filename, "p", "z", 12)
writeFile("analysis.txt", "mean pressure on z=12: " + str(mean(data)))
print("analysis complete,", len(data), "points")
`)
	upRes, err := archive.UploadAndRun("RESULT_FILE.DOWNLOAD_RESULT", "RESULT_FILE", key,
		uploaded, "easl", "analysis.easl", nil, scientist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded analysis: %s", upRes.Stdout)
	fmt.Printf("  produced %s (%d bytes)\n", upRes.Files[0].Name, len(upRes.Files[0].Data))
	fmt.Printf("  batch plan:\n%s", indent(upRes.BatchPlan))

	// 4. Guests may not upload; hostile code is refused.
	if _, err := archive.UploadAndRun("RESULT_FILE.DOWNLOAD_RESULT", "RESULT_FILE", key,
		uploaded, "easl", "x.easl", nil, guest); err != nil {
		fmt.Printf("guest upload -> refused (%v)\n", err)
	}
	if _, err := archive.UploadAndRun("RESULT_FILE.DOWNLOAD_RESULT", "RESULT_FILE", key,
		[]byte(`writeFile("/etc/passwd", "x")`), "easl", "evil.easl", nil, scientist); err != nil {
		fmt.Println("hostile upload (absolute path) -> refused by the sandbox")
	}
	if _, err := archive.UploadAndRun("RESULT_FILE.DOWNLOAD_RESULT", "RESULT_FILE", key,
		[]byte(`while (true) { }`), "easl", "loop.easl", nil, scientist); err != nil {
		fmt.Println("hostile upload (infinite loop) -> stopped by the step budget")
	}

	// 5. Operation chaining (paper future work): GetImage renders the
	// slice, Shrink halves it — the intermediate image never leaves the
	// server.
	shrinkURL, err := archive.ArchiveFile("fs1.site:80", "/codes/shrink.easl", strings.NewReader(`
let img = readFile(filename)
// Parse the "P5\nW H\n255\n" header.
let i = 0
let nl = 0
while (nl < 3) {
	if (img[i] == chr(10)) { nl = nl + 1 }
	i = i + 1
}
let header = substr(img, 0, i)
let dims = split(split(header, chr(10))[1], " ")
let w = num(dims[0])
let out = "P5" + chr(10) + str(floor(w/2)) + " " + str(floor(w/2)) + chr(10) + "255" + chr(10)
let y = 0
while (y < floor(w/2)) {
	let x = 0
	while (x < floor(w/2)) {
		out = out + img[i + (y*2)*w + x*2]
		x = x + 1
	}
	y = y + 1
}
writeFile("small.pgm", out)
print("shrunk", w, "->", floor(w/2))
`))
	if err != nil {
		log.Fatal(err)
	}
	mustExec(archive, fmt.Sprintf(
		`INSERT INTO CODE_FILE VALUES ('Shrink.easl', 'S1', 'EASL', 'Image downscaler', DLVALUE('%s'))`, shrinkURL))
	must(spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", &xuis.Operation{
		Name: "Shrink", Type: "EASL", Filename: "shrink.easl", Format: "easl", GuestAccess: true,
		Location: &xuis.Location{DatabaseResult: &xuis.DatabaseResult{
			ColID:      "CODE_FILE.DOWNLOAD_CODE_FILE",
			Conditions: []xuis.Condition{{ColID: "CODE_FILE.CODE_NAME", Eq: "'Shrink.easl'"}},
		}},
	}))
	must(archive.SetSpec(spec))
	archive.Ops().SetCaching(true)
	row, err := archive.RowByKey("RESULT_FILE", key)
	if err != nil {
		log.Fatal(err)
	}
	chain, err := archive.Ops().RunChain("RESULT_FILE.DOWNLOAD_RESULT", row, []ops.ChainStep{
		{Op: "GetImage", Params: map[string]string{"slice": "z", "type": "p"}},
		{Op: "Shrink"},
	}, ops.User{Name: "wason"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chained GetImage|Shrink: %d steps, final %s (%d bytes; first stage was %d bytes)\n",
		len(chain.Steps), chain.Final.Files[0].Name, len(chain.Final.Files[0].Data),
		len(chain.Steps[0].Files[0].Data))

	// 6. Operation statistics (paper future work).
	fmt.Println("operation statistics:")
	for name, st := range archive.Ops().Stats() {
		fmt.Printf("  %-20s runs=%d cacheHits=%d totalOutput=%dB\n",
			name, st.Runs, st.CacheHits, st.TotalOutput)
	}
}

func mustExec(a *core.Archive, sql string) {
	if _, err := a.DB.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "    " + strings.Join(lines, "\n    ") + "\n"
}
