// Command xuisgen is the paper's default-XUIS generation tool: it walks
// the database catalogue (tables, columns, types, primary and foreign
// keys) and samples column values, emitting the XML user interface
// specification that drives the web front end. The output can be
// customised by hand or with the xuis package before installing it.
//
// Usage:
//
//	xuisgen -db ./easia-db -name TURBULENCE -o turbulence.xuis
//	xuisgen -db ./easia-db -validate customised.xuis
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/sqldb"
	"repro/internal/xuis"
)

func main() {
	var (
		dbDir    = flag.String("db", "", "database directory (required)")
		name     = flag.String("name", "ARCHIVE", "database name recorded in the XUIS")
		out      = flag.String("o", "", "output file (default: stdout)")
		samples  = flag.Int("samples", 4, "sample values captured per column")
		validate = flag.String("validate", "", "validate an existing XUIS file against the catalogue instead of generating")
	)
	flag.Parse()
	if *dbDir == "" {
		log.Fatal("xuisgen: -db is required")
	}
	db, err := sqldb.Open(*dbDir)
	if err != nil {
		log.Fatalf("xuisgen: %v", err)
	}
	defer db.Close()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			log.Fatalf("xuisgen: %v", err)
		}
		spec, err := xuis.Parse(data)
		if err != nil {
			log.Fatalf("xuisgen: %v", err)
		}
		if err := xuis.Validate(spec, db.Catalog()); err != nil {
			log.Fatalf("xuisgen: %s is INVALID:\n%v", *validate, err)
		}
		fmt.Printf("%s is valid against %s\n", *validate, *dbDir)
		return
	}

	spec, err := xuis.Generator{MaxSamples: *samples}.Generate(db, *name)
	if err != nil {
		log.Fatalf("xuisgen: %v", err)
	}
	data, err := spec.Marshal()
	if err != nil {
		log.Fatalf("xuisgen: %v", err)
	}
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("xuisgen: %v", err)
	}
	fmt.Printf("wrote %s (%d bytes, %d tables)\n", *out, len(data), len(spec.Tables))
}
