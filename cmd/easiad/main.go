// Command easiad is the EASIA archive server: the database server host
// from the paper's architecture figure. It runs the metadata database,
// the SQL/MED coordinator and token authority, the operations engine
// and the web front end, and talks to dlfsd daemons on the file-server
// hosts (or to a built-in local file server for single-machine use).
//
// Usage (single machine with a built-in file server and demo data):
//
//	easiad -listen :8080 -db ./easia-db -secret s3cret -local-fs localhost:8080 -seed-demo
//
// Usage (distributed, with dlfsd daemons):
//
//	easiad -listen :8080 -db ./easia-db -secret s3cret \
//	    -fs fs1.example.org:8081=http://fs1.example.org:8081 \
//	    -fs fs2.example.org:8081=http://fs2.example.org:8081
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dlfs"
	"repro/internal/med"
	"repro/internal/turb"
	"repro/internal/webui"
	"repro/internal/xuis"
)

// fsFlags collects repeated -fs host=url mappings.
type fsFlags map[string]string

func (f fsFlags) String() string { return fmt.Sprint(map[string]string(f)) }

func (f fsFlags) Set(v string) error {
	host, url, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want host=url, got %q", v)
	}
	f[host] = url
	return nil
}

func main() {
	var (
		listen   = flag.String("listen", ":8080", "web UI listen address")
		dbDir    = flag.String("db", "easia-db", "database directory ('' for in-memory)")
		secret   = flag.String("secret", "", "shared token secret (must match every dlfsd)")
		ttl      = flag.Duration("ttl", med.DefaultTokenTTL, "access-token lifetime")
		workRoot = flag.String("work", "easia-work", "operation working directory root")
		localFS  = flag.String("local-fs", "", "run a built-in file server under this host name")
		localDir = flag.String("local-fs-root", "easia-files", "built-in file server root")
		seedDemo = flag.Bool("seed-demo", false, "load the turbulence demo simulation")
		adminPw  = flag.String("admin-password", "", "provision an 'admin' account with this password")
		salvage  = flag.Bool("salvage", false, "accept committed-data loss on a corrupt WAL: recover the intact prefix instead of refusing to open")
		slowLog  = flag.String("slow-query-log", "", "append EXPLAIN ANALYZE JSON lines for statements over -slow-query-threshold to this file")
		slowThr  = flag.Duration("slow-query-threshold", 100*time.Millisecond, "statement wall time that counts as slow (with -slow-query-log)")
		rcache   = flag.Int64("result-cache", 0, "cache complete SELECT results up to this many bytes (0 disables; entries invalidated by writes and DDL)")
	)
	remotes := fsFlags{}
	flag.Var(remotes, "fs", "remote file server as host=baseURL (repeatable)")
	flag.Parse()
	if *secret == "" {
		log.Fatal("easiad: -secret is required")
	}

	a, err := core.Open(core.Config{
		DBDir:    *dbDir,
		Secret:   []byte(*secret),
		TokenTTL: *ttl,
		WorkRoot: *workRoot,
		Salvage:  *salvage,
	})
	if err != nil {
		log.Fatalf("easiad: %v", err)
	}
	defer a.Close()
	if rec := a.DB.Recovery(); rec.Salvaged || rec.TruncatedBytes > 0 || rec.StaleWAL {
		log.Printf("easiad: crash recovery: tail=%s truncated=%dB staleWAL=%v salvaged=%v replayed=%d tx",
			rec.Tail, rec.TruncatedBytes, rec.StaleWAL, rec.Salvaged, rec.ReplayedTx)
	}
	if *slowLog != "" {
		f, err := os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("easiad: slow-query log: %v", err)
		}
		defer f.Close()
		a.DB.SetSlowQueryLog(f)
		a.DB.SetTraceThreshold(*slowThr)
		log.Printf("easiad: tracing statements, logging those over %s to %s", *slowThr, *slowLog)
	}
	if *rcache > 0 {
		a.DB.SetResultCache(*rcache)
		log.Printf("easiad: result cache enabled (%d bytes)", *rcache)
	}

	var localMgr *dlfs.Manager
	if *localFS != "" {
		auth, err := med.NewTokenAuthority([]byte(*secret), *ttl)
		if err != nil {
			log.Fatalf("easiad: %v", err)
		}
		store, err := dlfs.NewStore(*localDir)
		if err != nil {
			log.Fatalf("easiad: %v", err)
		}
		localMgr = dlfs.NewManager(*localFS, store, auth)
		a.AttachFileServer(core.WrapManager(localMgr))
		log.Printf("easiad: built-in file server %s rooted at %s", *localFS, *localDir)
	}
	for host, base := range remotes {
		a.AttachFileServer(core.WrapClient(dlfs.NewClient(host, base, nil)))
		log.Printf("easiad: attached remote file server %s at %s", host, base)
	}

	// Create the schema on first run; reopening an existing directory
	// finds it already present.
	if _, ok := a.DB.Catalog().Table("SIMULATION"); !ok {
		if err := a.InitTurbulenceSchema(); err != nil {
			log.Fatalf("easiad: schema: %v", err)
		}
		log.Print("easiad: installed turbulence schema")
	}
	if *seedDemo {
		if err := seed(a, *localFS); err != nil {
			log.Fatalf("easiad: seeding demo: %v", err)
		}
	}
	// Crash reconciliation: every controlled DATALINK in the database
	// must be linked on its file server.
	if err := a.Reconcile(); err != nil {
		log.Printf("easiad: reconcile warning: %v", err)
	}
	spec, err := a.GenerateXUIS("TURBULENCE")
	if err != nil {
		log.Fatalf("easiad: XUIS: %v", err)
	}
	if *seedDemo {
		if err := customiseDemoSpec(spec); err != nil {
			log.Fatalf("easiad: customising XUIS: %v", err)
		}
		if err := a.SetSpec(spec); err != nil {
			log.Fatalf("easiad: installing XUIS: %v", err)
		}
	}
	if *adminPw != "" {
		if err := a.Users.Add(core.User{Name: "admin", Admin: true}, *adminPw); err != nil {
			log.Fatalf("easiad: %v", err)
		}
	}

	srv := &http.Server{
		Addr:         *listen,
		Handler:      webui.NewServer(a),
		ReadTimeout:  time.Minute,
		WriteTimeout: 10 * time.Minute,
	}
	log.Printf("easiad: web interface on %s (guest/guest to browse)", *listen)

	// Graceful drain on SIGTERM/SIGINT: stop accepting requests, give
	// in-flight ones a bounded window to finish, then fall through to
	// the deferred a.Close() — which itself drains admitted statements
	// before tearing the engine down, so a statement mid-scan sees
	// ErrClosed instead of a yanked WAL.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatalf("easiad: %v", err)
	case <-ctx.Done():
		stop()
		log.Print("easiad: shutdown signal received, draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("easiad: shutdown: %v", err)
		}
	}
}

// seed loads the demo content: one author, one simulation, a real
// generated dataset and the GetImage post-processing code.
func seed(a *core.Archive, localHost string) error {
	if localHost == "" {
		return fmt.Errorf("-seed-demo requires -local-fs")
	}
	if rows, err := a.DB.Query(`SELECT COUNT(*) FROM SIMULATION`); err == nil && rows.Data[0][0].Int() > 0 {
		return nil // already seeded
	}
	for _, sql := range []string{
		`INSERT INTO AUTHOR VALUES ('A19990110151042', 'Papiani', 'University of Southampton', 'papiani@computer.org')`,
		`INSERT INTO SIMULATION VALUES ('S19990110150932', 'A19990110151042', 'Turbulent channel flow',
			'Direct numerical simulation of turbulent channel flow.', 48, 1395.0, 3, '2000-03-27 09:00:00')`,
	} {
		if _, err := a.DB.Exec(sql); err != nil {
			return err
		}
	}
	for step := 0; step < 3; step++ {
		var buf bytes.Buffer
		if _, err := turb.Generate(48, step, 1999).WriteTo(&buf); err != nil {
			return err
		}
		path := fmt.Sprintf("/vol0/run1/ts%d.tsf", step)
		url, err := a.ArchiveFile(localHost, path, bytes.NewReader(buf.Bytes()))
		if err != nil {
			return err
		}
		if _, err := a.DB.Exec(fmt.Sprintf(
			`INSERT INTO RESULT_FILE VALUES ('ts%d.tsf', 'S19990110150932', %d, 'u,v,w,p', 'TSF', %d, DLVALUE('%s'))`,
			step, step, buf.Len(), url)); err != nil {
			return err
		}
	}
	code := `
let axis = params["slice"]
let comp = params["type"]
if (axis == nil) { axis = "z" }
if (comp == nil) { comp = "u" }
let info = datasetInfo(filename)
let mid = floor(info.n / 2)
writeImage("slice.pgm", filename, comp, axis, mid)
let st = sliceStats(filename, comp, axis, mid)
print("slice", axis, "=", mid, "of", comp, " min", st.min, "max", st.max)
`
	url, err := a.ArchiveFile(localHost, "/codes/getimage.easl", strings.NewReader(code))
	if err != nil {
		return err
	}
	if _, err := a.DB.Exec(fmt.Sprintf(
		`INSERT INTO CODE_FILE VALUES ('GetImage.easl', 'S19990110150932', 'EASL', 'Slice visualiser', DLVALUE('%s'))`,
		url)); err != nil {
		return err
	}
	log.Print("easiad: demo simulation seeded (3 timesteps, GetImage code)")
	return nil
}

// customiseDemoSpec applies the paper's customisations: FK substitution
// and the GetImage operation with its parameter form, plus code upload.
func customiseDemoSpec(spec *xuis.Spec) error {
	if err := spec.SetFKSubstitution("SIMULATION", "AUTHOR_KEY", "AUTHOR.NAME"); err != nil {
		return err
	}
	op := &xuis.Operation{
		Name: "GetImage", Type: "EASL", Filename: "getimage.easl", Format: "easl", GuestAccess: true,
		Location: &xuis.Location{DatabaseResult: &xuis.DatabaseResult{
			ColID:      "CODE_FILE.DOWNLOAD_CODE_FILE",
			Conditions: []xuis.Condition{{ColID: "CODE_FILE.CODE_NAME", Eq: "'GetImage.easl'"}},
		}},
		Description: "Visualise one slice of the dataset without downloading it",
		Parameters: &xuis.Parameters{Params: []xuis.Param{
			{Variable: xuis.Variable{
				Description: "Select the slice you wish to visualise:",
				Select: &xuis.Select{Name: "slice", Size: 3, Options: []xuis.Option{
					{Value: "x", Label: "x plane"}, {Value: "y", Label: "y plane"}, {Value: "z", Label: "z plane"},
				}},
			}},
			{Variable: xuis.Variable{
				Description: "Select velocity component or pressure:",
				Inputs: []xuis.Input{
					{Type: "radio", Name: "type", Value: "u", Label: "u speed"},
					{Type: "radio", Name: "type", Value: "v", Label: "v speed"},
					{Type: "radio", Name: "type", Value: "w", Label: "w speed"},
					{Type: "radio", Name: "type", Value: "p", Label: "pressure"},
				},
			}},
		}},
	}
	if err := spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", op); err != nil {
		return err
	}
	return spec.SetUpload("RESULT_FILE", "DOWNLOAD_RESULT", &xuis.Upload{
		Type: "EASL", Format: "easl", GuestAccess: false,
	})
}
