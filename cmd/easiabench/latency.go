package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/sqldb"
	"repro/internal/sqltypes"
	"repro/internal/telemetry"
)

// Latency mode: drive a representative archive query mix against an
// in-memory engine, recording every execution into per-query telemetry
// histograms, and emit the percentile series as JSON for bench.sh to
// fold into the BENCH_<date>.json record.

// latencySeries is one query's latency summary, in the BENCH json
// "latency" schema.
type latencySeries struct {
	Name   string `json:"name"`
	Count  uint64 `json:"count"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P95Ns  int64  `json:"p95_ns"`
	P99Ns  int64  `json:"p99_ns"`
}

// latencyQueries is the measured mix: the QBE-shaped point lookup, a
// selective range scan, a grouped rollup and a top-k ordering — the
// archive's browse/aggregate staples.
var latencyQueries = []struct {
	name string
	sql  string
	args func(i int) []sqltypes.Value
}{
	{"point-lookup", `SELECT v FROM obs WHERE id = ?`,
		func(i int) []sqltypes.Value { return []sqltypes.Value{sqltypes.NewInt(int64(i % 10000))} }},
	{"range-agg", `SELECT COUNT(*), AVG(v) FROM obs WHERE id >= ? AND id < ?`,
		func(i int) []sqltypes.Value {
			lo := int64(i%90) * 100
			return []sqltypes.Value{sqltypes.NewInt(lo), sqltypes.NewInt(lo + 1000)}
		}},
	{"group-rollup", `SELECT sim, COUNT(*), AVG(v) FROM obs GROUP BY sim`,
		func(int) []sqltypes.Value { return nil }},
	{"top-k", `SELECT id, v FROM obs ORDER BY v DESC LIMIT 10`,
		func(int) []sqltypes.Value { return nil }},
}

// runLatency builds a 10k-row dataset, runs each query of the mix n
// times through telemetry histograms, and prints the series as a JSON
// array on stdout.
func runLatency(n int) error {
	db, err := sqldb.Open("")
	if err != nil {
		return err
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE obs (id INTEGER PRIMARY KEY, sim VARCHAR(30), v DOUBLE)`); err != nil {
		return err
	}
	for i := 0; i < 10000; i++ {
		if _, err := db.Exec(`INSERT INTO obs VALUES (?, ?, ?)`,
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("S%03d", i%100)),
			sqltypes.NewDouble(float64(i%997))); err != nil {
			return err
		}
	}

	reg := telemetry.New()
	out := make([]latencySeries, 0, len(latencyQueries))
	for _, q := range latencyQueries {
		h := reg.Histogram("easiabench_query_ns", "Per-query latency.", "query", q.name)
		st, err := db.Prepare(q.sql)
		if err != nil {
			return fmt.Errorf("%s: %w", q.name, err)
		}
		for i := 0; i < n; i++ {
			start := time.Now()
			if _, err := st.Query(q.args(i)...); err != nil {
				return fmt.Errorf("%s: %w", q.name, err)
			}
			h.ObserveSince(start)
		}
		s := h.Snapshot()
		out = append(out, latencySeries{
			Name:   q.name,
			Count:  s.Count,
			MeanNs: s.Mean(),
			P50Ns:  s.P50,
			P95Ns:  s.P95,
			P99Ns:  s.P99,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
