// Command easiabench regenerates every table and figure of the paper's
// evaluation (experiments E1–E12 in DESIGN.md/EXPERIMENTS.md) and
// prints them in the paper's format.
//
// Usage:
//
//	easiabench              # run everything
//	easiabench -exp e1,e3   # run selected experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

// osTempDirer supplies throw-away directories outside of `go test`.
type osTempDirer struct{ dirs []string }

func (o *osTempDirer) TempDir() string {
	d, err := os.MkdirTemp("", "easiabench-*")
	if err != nil {
		panic(err)
	}
	o.dirs = append(o.dirs, d)
	return d
}

func (o *osTempDirer) cleanup() {
	for _, d := range o.dirs {
		os.RemoveAll(d)
	}
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (e1..e12) or 'all'")
	latency := flag.Bool("latency", false, "run the per-query latency workload instead of the experiments and print p50/p95/p99 JSON")
	latencyN := flag.Int("latency-n", 2000, "executions per query in -latency mode")
	flag.Parse()

	if *latency {
		if err := runLatency(*latencyN); err != nil {
			fmt.Fprintf(os.Stderr, "latency: %v\n", err)
			os.Exit(1)
		}
		return
	}

	dirs := &osTempDirer{}
	defer dirs.cleanup()

	want := map[string]bool{}
	runAll := *expFlag == "all" || *expFlag == ""
	for _, id := range strings.Split(strings.ToLower(*expFlag), ",") {
		want[strings.TrimSpace(id)] = true
	}
	selected := func(id string) bool { return runAll || want[strings.ToLower(id)] }

	type runner struct {
		id string
		fn func() (exp.Report, error)
	}
	runners := []runner{
		{"E1", func() (exp.Report, error) { return exp.E1BandwidthTable(), nil }},
		{"E2", func() (exp.Report, error) { return exp.E2Report(), nil }},
		{"E3", func() (exp.Report, error) { return exp.E3Report(dirs) }},
		{"E4", func() (exp.Report, error) { return exp.E4Report(), nil }},
		{"E5", func() (exp.Report, error) { return exp.E5Report(), nil }},
		{"E6", func() (exp.Report, error) { return exp.E6EndToEnd(dirs) }},
		{"E7", func() (exp.Report, error) { return exp.E7Report(dirs) }},
		{"E8", func() (exp.Report, error) { return exp.E8Report(dirs) }},
		{"E9", exp.E9Report},
		{"E10", exp.E10Report},
		{"E11", func() (exp.Report, error) { return exp.E11Report(dirs) }},
		{"E12", func() (exp.Report, error) { return exp.E12Report(dirs) }},
	}
	failed := false
	for _, r := range runners {
		if !selected(r.id) {
			continue
		}
		report, err := r.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			failed = true
			continue
		}
		fmt.Printf("=== %s: %s ===\n%s\n", report.ID, report.Title, report.Text)
	}
	if failed {
		os.Exit(1)
	}
}
