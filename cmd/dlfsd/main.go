// Command dlfsd is the Data Links File Manager daemon: run one on every
// file-server host. It stores the large result files, enforces SQL/MED
// link control (linked files cannot be renamed or deleted), validates
// encrypted access tokens for READ PERMISSION DB files, and speaks the
// two-phase link protocol with the archive's coordinator.
//
// Usage:
//
//	dlfsd -host fs1.example.org:8081 -listen :8081 -root /data/archive -secret s3cret
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/dlfs"
	"repro/internal/med"
)

func main() {
	var (
		host   = flag.String("host", "localhost:8081", "host[:port] as it appears in DATALINK URLs")
		listen = flag.String("listen", ":8081", "listen address")
		root   = flag.String("root", "dlfs-data", "file store root directory")
		secret = flag.String("secret", "", "shared token secret (must match the archive server)")
		ttl    = flag.Duration("ttl", med.DefaultTokenTTL, "default token lifetime")
	)
	flag.Parse()
	if *secret == "" {
		log.Fatal("dlfsd: -secret is required (shared with the archive server)")
	}
	auth, err := med.NewTokenAuthority([]byte(*secret), *ttl)
	if err != nil {
		log.Fatalf("dlfsd: %v", err)
	}
	store, err := dlfs.NewStore(*root)
	if err != nil {
		log.Fatalf("dlfsd: %v", err)
	}
	mgr := dlfs.NewManager(*host, store, auth)
	srv := &http.Server{
		Addr:         *listen,
		Handler:      dlfs.NewServer(mgr),
		ReadTimeout:  5 * time.Minute,
		WriteTimeout: 30 * time.Minute, // large dataset downloads
	}
	log.Printf("dlfsd: serving host %s from %s on %s (%d linked files)",
		*host, *root, *listen, store.LinkedCount())
	log.Fatal(srv.ListenAndServe())
}
