// Command dlfsd is the Data Links File Manager daemon: run one on every
// file-server host. It stores the large result files, enforces SQL/MED
// link control (linked files cannot be renamed or deleted), validates
// encrypted access tokens for READ PERMISSION DB files, and speaks the
// two-phase link protocol with the archive's coordinator.
//
// Usage (single file server):
//
//	dlfsd -host fs1.example.org:8081 -listen :8081 -root /data/archive -secret s3cret
//
// With -replica flags the daemon instead runs as a replication
// gateway: it serves the same wire protocol, but every file is placed
// on -rf of the named peer daemons (rendezvous hashing), link-control
// 2PC fans out to the placed replicas, reads fail over past dead
// peers, and a background health checker + anti-entropy loop
// re-replicates what a crashed peer missed once it rejoins:
//
//	dlfsd -host fs.example.org:8080 -listen :8080 -secret s3cret \
//	      -rf 2 -replica fs1.example.org:8081=http://fs1.example.org:8081 \
//	            -replica fs2.example.org:8081=http://fs2.example.org:8081
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dlfs"
	"repro/internal/dlfs/cluster"
	"repro/internal/med"
	"repro/internal/telemetry"
)

func main() {
	var (
		host   = flag.String("host", "localhost:8081", "host[:port] as it appears in DATALINK URLs")
		listen = flag.String("listen", ":8081", "listen address")
		root   = flag.String("root", "dlfs-data", "file store root directory (single-server mode)")
		secret = flag.String("secret", "", "shared token secret (must match the archive server)")
		ttl    = flag.Duration("ttl", med.DefaultTokenTTL, "default token lifetime")
		rf      = flag.Int("rf", cluster.DefaultReplicationFactor, "replication factor (gateway mode)")
		probe   = flag.Duration("probe", 2*time.Second, "health-probe / anti-entropy interval (gateway mode)")
		rpcTO   = flag.Duration("rpc-timeout", 0, "per-attempt deadline for RPCs to peer daemons (gateway mode; 0 = unbounded)")
		retries = flag.Int("rpc-retries", 0, "extra attempts for idempotent RPCs to peer daemons, with jittered exponential backoff (gateway mode)")
		state  = flag.String("state", "", "repair-state checkpoint file (gateway mode): removal tombstones and pending repairs survive a restart")
		spool  = flag.String("spool", "", "spool directory for fan-out/repair payloads (gateway mode; default OS temp dir, often RAM-backed tmpfs — use a real disk for large datasets)")
	)
	var replicas []string
	flag.Func("replica", "peer daemon as host=baseURL (repeatable; enables gateway mode)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want host=baseURL, got %q", v)
		}
		replicas = append(replicas, v)
		return nil
	})
	flag.Parse()
	if *secret == "" {
		log.Fatal("dlfsd: -secret is required (shared with the archive server)")
	}
	auth, err := med.NewTokenAuthority([]byte(*secret), *ttl)
	if err != nil {
		log.Fatalf("dlfsd: %v", err)
	}

	// One registry per process: in gateway mode the cluster tier's
	// counters land in it; in single-server mode it still serves the
	// /metrics endpoint (empty exposition until metrics register).
	metrics := telemetry.New()
	var backend dlfs.Backend
	var gateway *cluster.ReplicaSet
	switch {
	case len(replicas) > 0:
		rs := cluster.New(cluster.Config{
			Host:              *host,
			ReplicationFactor: *rf,
			ProbeInterval:     *probe,
			RPCTimeout:        *rpcTO,
			RetryAttempts:     *retries,
			Tokens:            auth,
			StatePath:         *state,
			SpoolDir:          *spool,
			Metrics:           metrics,
		})
		for _, spec := range replicas {
			name, base, _ := strings.Cut(spec, "=")
			if err := rs.Add(cluster.NewClientNode(dlfs.NewClient(name, base, nil))); err != nil {
				log.Fatalf("dlfsd: %v", err)
			}
		}
		if err := rs.LoadState(); err != nil {
			log.Fatalf("dlfsd: %v", err)
		}
		rs.Start()
		backend = rs
		gateway = rs
		log.Printf("dlfsd: gateway for host %s over replicas %v (rf=%d, probe=%s) on %s",
			*host, rs.Members(), *rf, *probe, *listen)
	default:
		store, err := dlfs.NewStore(*root)
		if err != nil {
			log.Fatalf("dlfsd: %v", err)
		}
		backend = dlfs.NewManager(*host, store, auth)
		log.Printf("dlfsd: serving host %s from %s on %s (%d linked files)",
			*host, *root, *listen, store.LinkedCount())
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler())
	mux.Handle("/", dlfs.NewServer(backend))
	srv := &http.Server{
		Addr:         *listen,
		Handler:      mux,
		ReadTimeout:  5 * time.Minute,
		WriteTimeout: 30 * time.Minute, // large dataset downloads
	}

	// Graceful drain on SIGTERM/SIGINT: stop accepting connections,
	// let in-flight transfers finish within a bounded window, then (in
	// gateway mode) stop the probe/repair loop so a mid-pass repair
	// completes its current step and the repair-state checkpoint is
	// consistent on disk.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatalf("dlfsd: %v", err)
	case <-ctx.Done():
		stop()
		log.Print("dlfsd: shutdown signal received, draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("dlfsd: shutdown: %v", err)
		}
		if gateway != nil {
			gateway.Stop()
		}
	}
}
