#!/bin/sh
# Run the benchmark suite and record the results as BENCH_<date>.json in
# the repo root, so the perf trajectory accumulates across PRs.
#
# Usage: scripts/bench.sh [-pkg <go-package>] [go-test-bench-regexp]
#   BENCHTIME=2s scripts/bench.sh 'BenchmarkAblation.*'
#   scripts/bench.sh -pkg . 'BenchmarkAblation_(ValueLayout|CompositeIndex|JoinPlan)'
#
# -pkg restricts the run to one Go package (default "."): the query-
# engine ablations live in the root package and run in seconds, while
# the full default pattern also exercises the slower cluster benches —
# the filter lets CI (and a laptop) track the query engine without
# paying for the replication tier. OUT=<file> overrides the output
# filename (useful when recording more than one slice per day).
#
# The default pattern runs every benchmark, including the ablations
# that track the engine's perf levers across PRs:
#   BenchmarkAblation_PlanCache      — prepared-statement plan cache
#   BenchmarkAblation_OrderedIndex   — ordered index vs full scan on a
#                                      selective 100k-row range predicate
#   BenchmarkAblation_ValueLayout    — compact 32-byte Value: full-scan
#                                      aggregate + projection B/op
#   BenchmarkAblation_CompositeIndex — composite (2-col) index + index-
#                                      only COUNT vs full scan, 100k rows
#   BenchmarkAblation_JoinPlan       — index nested-loop vs cross-product
#                                      join on 1k×1k
#   BenchmarkAblation_GroupPushdown  — grouped-aggregate strategies on a
#                                      100k-row rollup: legacy materialise
#                                      vs hash-agg fold vs group-ordered
#                                      index-only fold
#   BenchmarkAblation_HashJoin       — hash join vs cross product on an
#                                      unindexed 1k×1k equi-join
#   BenchmarkAblation_Arena          — arena/columnar result path vs
#                                      legacy per-row allocation on a
#                                      100k-row projection (B/op guard)
#   BenchmarkAblation_OpCache        — result cache on vs off on a
#                                      repeated parameterized browse query
#   BenchmarkAblation_GroupCommit    — WAL group commit vs serial fsyncs
#                                      (parallel vs serial committers)
#   BenchmarkAblation_Failover       — token-checked read latency through
#                                      the replicated tier, 0 vs 1
#                                      replicas down
#   BenchmarkReplicatedPut           — archival write throughput at RF=1
#                                      vs RF=2 fan-out
set -eu

cd "$(dirname "$0")/.."

PKG="."
if [ "${1:-}" = "-pkg" ]; then
    PKG="$2"
    shift 2
fi
PATTERN="${1:-.}"
BENCHTIME="${BENCHTIME:-0.5s}"
DATE="$(date -u +%Y%m%d)"
OUT="${OUT:-BENCH_${DATE}.json}"
RAW="$(mktemp)"
LAT="$(mktemp)"
trap 'rm -f "$RAW" "$LAT"' EXIT

# No pipeline here: under plain sh `go test | tee` would exit with
# tee's status and a failed bench run would still record a green JSON.
go test -run 'xxx' -bench "$PATTERN" -benchtime "$BENCHTIME" -benchmem "$PKG" > "$RAW" 2>&1 || {
    cat "$RAW"
    echo "bench run failed" >&2
    exit 1
}
cat "$RAW"

# Allocation-regression guard: the arena result path exists to keep the
# projection hot path allocation-free, so fail the run if the arena
# sub-benchmark crept back above the pinned allocs/op ceiling. Skipped
# when the pattern filtered the benchmark out of this run.
ARENA_ALLOC_CEILING="${ARENA_ALLOC_CEILING:-5000}"
awk -v ceiling="$ARENA_ALLOC_CEILING" '
$1 ~ /^BenchmarkAblation_Arena\/arena/ {
    for (i = 3; i < NF; i++) if ($(i+1) == "allocs/op") allocs = $i
    if (allocs + 0 > ceiling + 0) {
        printf "allocation regression: %s at %s allocs/op exceeds ceiling %s\n", $1, allocs, ceiling > "/dev/stderr"
        exit 1
    }
}
' "$RAW" || exit 1

# Per-query latency percentiles from the telemetry histograms: the
# easiabench -latency mode emits a JSON array of
# {name, count, mean_ns, p50_ns, p95_ns, p99_ns} that becomes the
# "latency" key of the record. LATENCY_N=0 skips the run.
LATENCY_N="${LATENCY_N:-2000}"
if [ "$LATENCY_N" -gt 0 ]; then
    go run ./cmd/easiabench -latency -latency-n "$LATENCY_N" > "$LAT" || {
        echo "latency run failed" >&2
        exit 1
    }
else
    printf '[]\n' > "$LAT"
fi

# Convert `go test -bench` text output into a JSON array of
# {name, iterations, ns_per_op, bytes_per_op, allocs_per_op}, then
# append the latency series.
awk -v date="$DATE" '
BEGIN { print "{"; printf "  \"date\": \"%s\",\n  \"benchmarks\": [\n", date; n = 0 }
/^Benchmark/ {
    name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, (ns == "" ? "null" : ns)
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n  ]," }
' "$RAW" > "$OUT"
printf '  "latency": ' >> "$OUT"
sed 's/^/  /; 1s/^  //' "$LAT" >> "$OUT"
printf '}\n' >> "$OUT"

echo "wrote $OUT"
