#!/bin/sh
# Run the benchmark suite and record the results as BENCH_<date>.json in
# the repo root, so the perf trajectory accumulates across PRs.
#
# Usage: scripts/bench.sh [go-test-bench-regexp]
#   BENCHTIME=2s scripts/bench.sh 'BenchmarkAblation.*'
#
# The default pattern runs every benchmark, including the ablations
# that track the engine's perf levers across PRs:
#   BenchmarkAblation_PlanCache    — prepared-statement plan cache
#   BenchmarkAblation_OrderedIndex — ordered index vs full scan on a
#                                    selective 100k-row range predicate
#   BenchmarkAblation_GroupCommit  — WAL group commit vs serial fsyncs
#                                    (parallel vs serial committers)
#   BenchmarkAblation_Failover     — token-checked read latency through
#                                    the replicated tier, 0 vs 1
#                                    replicas down
#   BenchmarkReplicatedPut         — archival write throughput at RF=1
#                                    vs RF=2 fan-out
set -eu

cd "$(dirname "$0")/.."

PATTERN="${1:-.}"
BENCHTIME="${BENCHTIME:-0.5s}"
DATE="$(date -u +%Y%m%d)"
OUT="BENCH_${DATE}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# No pipeline here: under plain sh `go test | tee` would exit with
# tee's status and a failed bench run would still record a green JSON.
go test -run 'xxx' -bench "$PATTERN" -benchtime "$BENCHTIME" -benchmem . > "$RAW" 2>&1 || {
    cat "$RAW"
    echo "bench run failed" >&2
    exit 1
}
cat "$RAW"

# Convert `go test -bench` text output into a JSON array of
# {name, iterations, ns_per_op, bytes_per_op, allocs_per_op}.
awk -v date="$DATE" '
BEGIN { print "{"; printf "  \"date\": \"%s\",\n  \"benchmarks\": [\n", date; n = 0 }
/^Benchmark/ {
    name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, (ns == "" ? "null" : ns)
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n  ]\n}" }
' "$RAW" > "$OUT"

echo "wrote $OUT"
