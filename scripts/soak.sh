#!/bin/sh
# Long crash-recovery soak: drive the sqldb storage engine through
# randomized disk-fault schedules (internal/iofault crash points: torn
# writes, suppressed renames/truncates, dead-after-crash descriptors)
# and hold it to the durability contract — every acknowledged commit
# present after recovery, no phantom rows, multi-row transactions atomic,
# and a crash history alone never mistaken for corruption.
#
# Usage:
#   scripts/soak.sh                 # 2000 schedules, seed 1, -race
#   SOAK_SCHEDULES=100 scripts/soak.sh
#   SOAK_SEED=$(date +%s) scripts/soak.sh   # a fresh seed band
#   NORACE=1 scripts/soak.sh        # ~5x faster, for huge sweeps
#   SOAK_CHAOS=1 scripts/soak.sh    # also run the crash+cancel chaos
#                                   # schedules (admission pressure,
#                                   # randomly canceled statements, and
#                                   # the canceled-never-visible oracle
#                                   # on top of the durability contract)
#
# Schedule i uses seed SOAK_SEED+i, so a failure report names the exact
# seed to replay: SOAK_SEED=<seed> SOAK_SCHEDULES=1 scripts/soak.sh
# reruns just that schedule (as schedule-000).
#
# CI runs the bounded version of this (see .github/workflows/ci.yml);
# this script is the long-haul knob for release qualification and for
# shaking out rare interleavings after storage-layer changes.

set -e
cd "$(dirname "$0")/.."

SOAK_SCHEDULES="${SOAK_SCHEDULES:-2000}"
SOAK_SEED="${SOAK_SEED:-1}"
RACE="-race"
[ -n "$NORACE" ] && RACE=""

RUN='TestCrashRecoverySoak|TestSoakHonestRefusal|TestCheckpointCrashWindows|TestWALTailCorpus|TestFsyncPoisonsDB'
[ -n "$SOAK_CHAOS" ] && RUN="$RUN|TestChaosCancelSoak"

echo "soak: $SOAK_SCHEDULES schedules, base seed $SOAK_SEED${RACE:+, race detector on}${SOAK_CHAOS:+, chaos cancel schedules on}"
SOAK_SCHEDULES="$SOAK_SCHEDULES" SOAK_SEED="$SOAK_SEED" \
	CHAOS_SCHEDULES="$SOAK_SCHEDULES" CHAOS_SEED="$SOAK_SEED" \
	go test $RACE -count=1 -timeout 60m \
	-run "$RUN" \
	./internal/sqldb/
