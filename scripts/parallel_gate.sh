#!/bin/sh
# Multi-core scaling regression gate over BenchmarkParallelQuery.
#
# Asserts that the MVCC read path actually scales with cores:
#   - read-only throughput at GOMAXPROCS=8 is at least MIN_SPEEDUP x
#     the single-proc run (default 3.0 on >=4 cores, 1.5 on 2-3 cores);
#   - the mixed 90/10 read/write workload at procs=8 stays within
#     MIXED_SLACK (default 20%) of the read-only run, i.e. sharded
#     single-table writers do not serialise readers.
#
# On a single-core machine the gate cannot measure scaling, so it
# prints SKIP and exits 0 — CI marks the step skipped via its own
# core-count check; this guard is the local-equivalent belt.
#
# Usage: scripts/parallel_gate.sh
#   MIN_SPEEDUP=2.5 MIXED_SLACK=1.3 BENCHTIME=0.5s scripts/parallel_gate.sh
set -eu

cd "$(dirname "$0")/.."

CORES="$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)"
if [ "$CORES" -lt 2 ]; then
    echo "SKIP: parallel gate needs >=2 cores, have $CORES"
    exit 0
fi
if [ "$CORES" -ge 4 ]; then
    MIN_SPEEDUP="${MIN_SPEEDUP:-3.0}"
else
    # With 2-3 physical slots procs=8 just oversubscribes; only a
    # modest speedup is physically available.
    MIN_SPEEDUP="${MIN_SPEEDUP:-1.5}"
fi
MIXED_SLACK="${MIXED_SLACK:-1.20}"
BENCHTIME="${BENCHTIME:-1s}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run 'xxx' -bench 'BenchmarkParallelQuery' -benchtime "$BENCHTIME" -count=1 . > "$RAW" 2>&1 || {
    cat "$RAW"
    echo "parallel gate: bench run failed" >&2
    exit 1
}
cat "$RAW"

awk -v min="$MIN_SPEEDUP" -v slack="$MIXED_SLACK" -v cores="$CORES" '
/^BenchmarkParallelQuery\/read-only\/procs=1-/  { ro1 = $3 }
/^BenchmarkParallelQuery\/read-only\/procs=8-/  { ro8 = $3 }
/^BenchmarkParallelQuery\/mixed-90-10\/procs=8-/ { mx8 = $3 }
END {
    if (ro1 == "" || ro8 == "" || mx8 == "") {
        print "parallel gate: missing benchmark lines (read-only procs=1/8, mixed procs=8)" > "/dev/stderr"
        exit 1
    }
    speedup = ro1 / ro8
    ratio = mx8 / ro8
    printf "parallel gate: cores=%d read-only speedup procs=1->8: %.2fx (want >= %.2fx)\n", cores, speedup, min
    printf "parallel gate: mixed/read-only ns ratio at procs=8: %.2f (want <= %.2f)\n", ratio, slack
    fail = 0
    if (speedup < min) {
        printf "FAIL: read-only scaling regressed (%.2fx < %.2fx)\n", speedup, min > "/dev/stderr"
        fail = 1
    }
    if (ratio > slack) {
        printf "FAIL: writers slow concurrent readers too much (%.2f > %.2f)\n", ratio, slack > "/dev/stderr"
        fail = 1
    }
    exit fail
}
' "$RAW"

echo "parallel gate: OK"
