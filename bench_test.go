// One benchmark per exhibit of the paper's evaluation (see DESIGN.md §4
// and EXPERIMENTS.md), plus ablation benches for the design choices the
// architecture calls out. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dlfs"
	"repro/internal/dlfs/cluster"
	"repro/internal/exp"
	"repro/internal/med"
	"repro/internal/netsim"
	"repro/internal/sqldb"
	"repro/internal/sqltypes"
	"repro/internal/webui"
	"repro/internal/xuis"
)

// BenchmarkE1_BandwidthTable regenerates the paper's Table 1 (the FTP
// bandwidth measurements and derived transfer times).
func BenchmarkE1_BandwidthTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := netsim.Table1(netsim.SuperJANET1999)
		if len(rows) != 4 || netsim.FormatDuration(rows[0].SmallTime) != "45m20s" {
			b.Fatal("table shape")
		}
	}
}

// BenchmarkE2_CentralVsDistributed evaluates the "Bandwidth Problems"
// comparison across sizes and periods.
func BenchmarkE2_CentralVsDistributed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, size := range []int64{netsim.SmallSimulationBytes, netsim.LargeSimulationBytes} {
			for _, p := range []netsim.Period{netsim.Day, netsim.Evening} {
				r := exp.E2CentralVsDistributed(size, 100, 10, p)
				if r.EASIAWANBytes >= r.CentralWANBytes {
					b.Fatal("distributed must move fewer bytes")
				}
			}
		}
	}
}

// BenchmarkE3_DataReduction runs the real archived GetImage operation:
// fetch code, unpack, sandboxed slice+render — the paper's server-side
// data-reduction path.
func BenchmarkE3_DataReduction(b *testing.B) {
	d, err := exp.BuildDemoArchive(b, 24)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := d.RunDemoOperation("z")
		if err != nil {
			b.Fatal(err)
		}
		if out <= 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkE4_ServerScaling runs the max-min fair contention simulation
// behind the distribution experiment.
func BenchmarkE4_ServerScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.E4ServerScaling(16, []int{1, 2, 4, 8, 16}, netsim.SmallSimulationBytes)
		if rows[4].Speedup < 15 {
			b.Fatalf("speedup %v", rows[4].Speedup)
		}
	}
}

// BenchmarkE5_ParallelOps measures real slice+render jobs spread over
// 1 vs 8 worker hosts.
func BenchmarkE5_ParallelOps(b *testing.B) {
	for _, hosts := range []int{1, 8} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exp.E5ParallelOps(32, 8, []int{hosts})
			}
		})
	}
}

// BenchmarkE6_EndToEnd runs the full architecture flow: archive, link,
// search, browse, token download, operation.
func BenchmarkE6_EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E6EndToEnd(b); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7_XUISGeneration measures default-XUIS generation from the
// five-table catalogue.
func BenchmarkE7_XUISGeneration(b *testing.B) {
	d, err := exp.BuildDemoArchive(b, 8)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (xuis.Generator{MaxSamples: 4}).Generate(d.Archive.DB, "TURBULENCE"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8_ResultPage measures rendering the hyperlinked result
// table over HTTP (the paper's "Result table" figure).
func BenchmarkE8_ResultPage(b *testing.B) {
	d, err := exp.BuildDemoArchive(b, 8)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	if err := d.Archive.Users.Add(core.User{Name: "bench"}, "pw"); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(webui.NewServer(d.Archive))
	defer srv.Close()
	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar}
	if _, err := client.PostForm(srv.URL+"/login", url.Values{"username": {"bench"}, "password": {"pw"}}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(srv.URL + "/query?table=RESULT_FILE&all=1")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkE9_XUISMarshal measures serialising the XUIS fragments.
func BenchmarkE9_XUISMarshal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E9Report(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10_Tokens measures the DATALINK access-token lifecycle
// (AES-GCM mint + validate).
func BenchmarkE10_Tokens(b *testing.B) {
	auth, err := med.NewTokenAuthority([]byte("bench-secret"), time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	const path = "/vol0/run1/ts4.tsf"
	b.Run("mint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := auth.Mint(path, "bench", 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("validate", func(b *testing.B) {
		tok, _ := auth.Mint(path, "bench", 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := auth.Validate(tok, path); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11_SandboxUpload measures the full code-upload path:
// unpack, chdir, sandboxed execution, output collection.
func BenchmarkE11_SandboxUpload(b *testing.B) {
	d, err := exp.BuildDemoArchive(b, 12)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	code := []byte(`
let st = sliceStats(filename, "u", "z", 6)
writeFile("report.txt", "rms=" + str(st.rms))
`)
	key := map[string]string{"FILE_NAME": "ts4.tsf", "SIMULATION_KEY": "S19990110150932"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := d.Archive.UploadAndRun("RESULT_FILE.DOWNLOAD_RESULT", "RESULT_FILE", key,
			code, "easl", "main.easl", nil, core.User{Name: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Files) != 1 {
			b.Fatal("output missing")
		}
	}
}

// BenchmarkE12_LinkControl measures the transactional link/unlink cycle
// (INSERT with PrepareLink+Commit, DELETE with PrepareUnlink+Commit).
func BenchmarkE12_LinkControl(b *testing.B) {
	d, err := exp.BuildDemoArchive(b, 8)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	// Pre-create the files to link.
	for i := 0; i < 512; i++ {
		path := fmt.Sprintf("/bench/f%04d.dat", i)
		if _, err := d.FS1.Put(path, io.LimitReader(zeroReader{}, 64)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/bench/f%04d.dat", i%512)
		url := "http://fs1.sim:80" + path
		if _, err := d.Archive.DB.Exec(
			`INSERT INTO RESULT_FILE VALUES (?, 'S19990110150932', 0, 'u', 'TSF', 64, DLVALUE(?))`,
			sqltypes.NewString(fmt.Sprintf("bench-%d", i)), sqltypes.NewString(url)); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Archive.DB.Exec(`DELETE FROM RESULT_FILE WHERE FILE_NAME = ?`,
			sqltypes.NewString(fmt.Sprintf("bench-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// ---------- ablation benches (DESIGN.md §5) ----------

// BenchmarkAblation_IndexVsScan shows the effect of the hash index the
// schema creates on RESULT_FILE.SIMULATION_KEY.
func BenchmarkAblation_IndexVsScan(b *testing.B) {
	build := func(withIndex bool) *sqldb.DB {
		db, err := sqldb.Open("")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, sim VARCHAR(30), v DOUBLE)`); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			if _, err := db.Exec(`INSERT INTO t VALUES (?, ?, ?)`,
				sqltypes.NewInt(int64(i)),
				sqltypes.NewString(fmt.Sprintf("S%03d", i%100)),
				sqltypes.NewDouble(float64(i))); err != nil {
				b.Fatal(err)
			}
		}
		if withIndex {
			if _, err := db.Exec(`CREATE INDEX idx_sim ON t (sim)`); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}
	for _, mode := range []struct {
		name string
		idx  bool
	}{{"scan", false}, {"indexed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			db := build(mode.idx)
			defer db.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := db.Query(`SELECT COUNT(*) FROM t WHERE sim = 'S042'`)
				if err != nil || rows.Data[0][0].Int() != 50 {
					b.Fatalf("rows=%v err=%v", rows, err)
				}
			}
		})
	}
}

// BenchmarkAblation_OpCache measures the engine's result cache — the
// paper's future-work item, now implemented in sqldb — on the archive's
// hottest repeated shape: the same parameterized browse query issued
// over and over against an unchanged catalogue. Cache off re-executes
// the indexed scan, sort and projection every time; cache on serves a
// copy-out of the epoch-checked cached entry. The acceptance bar is
// ≥10x on ns/op for the repeated query.
func BenchmarkAblation_OpCache(b *testing.B) {
	build := func() *sqldb.DB {
		db, err := sqldb.Open("")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(`CREATE TABLE RESULT_FILE (
			FILE_NAME VARCHAR(64) PRIMARY KEY, SIMULATION_KEY VARCHAR(30),
			TIMESTEP INTEGER, MEASUREMENT VARCHAR(10), SIZE_BYTES INTEGER)`); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 20_000; i++ {
			if _, err := db.Exec(`INSERT INTO RESULT_FILE VALUES (?, ?, ?, ?, ?)`,
				sqltypes.NewString(fmt.Sprintf("ts%05d.tsf", i)),
				sqltypes.NewString(fmt.Sprintf("S%03d", i%400)),
				sqltypes.NewInt(int64(i)),
				sqltypes.NewString("u"),
				sqltypes.NewInt(int64(i)*1024)); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}
	const query = `SELECT FILE_NAME, TIMESTEP, SIZE_BYTES FROM RESULT_FILE
		WHERE SIMULATION_KEY = ? AND MEASUREMENT = 'u' ORDER BY TIMESTEP LIMIT 20`
	arg := sqltypes.NewString("S042")
	for _, cached := range []bool{false, true} {
		name := "cache=off"
		if cached {
			name = "cache=on"
		}
		b.Run(name, func(b *testing.B) {
			db := build()
			defer db.Close()
			if cached {
				db.SetResultCache(16 << 20)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := db.Query(query, arg)
				if err != nil || len(rows.Data) != 20 {
					b.Fatalf("rows=%v err=%v", rows, err)
				}
				rows.Close()
			}
		})
	}
}

// BenchmarkAblation_Arena measures the arena/columnar result path on
// the row-materialisation shape BenchmarkAblation_ValueLayout/project
// tracks: a 100k-row scan projecting five mixed-kind columns, where the
// legacy path pays one make([]Value) per projected row. The arena path
// batches rows through a columnar buffer and carves them from pooled
// chunks released wholesale on Rows.Close, so B/op and allocs/op drop
// by the chunk fan-in (acceptance bar: ≥4x on both).
func BenchmarkAblation_Arena(b *testing.B) {
	db, err := sqldb.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE T (
		ID INTEGER PRIMARY KEY, SIM VARCHAR(30), TS TIMESTAMP,
		V DOUBLE, OK BOOLEAN)`); err != nil {
		b.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO T VALUES (?, ?, ?, ?, ?)`)
	if err != nil {
		b.Fatal(err)
	}
	base := time.Date(1999, 1, 10, 15, 9, 32, 0, time.UTC)
	const rows = 100_000
	for i := 0; i < rows; i++ {
		if _, err := ins.Exec(
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("S%03d", i%400)),
			sqltypes.NewTime(base.Add(time.Duration(i)*time.Second)),
			sqltypes.NewDouble(float64(i)*0.5),
			sqltypes.NewBool(i%2 == 0)); err != nil {
			b.Fatal(err)
		}
	}
	const query = `SELECT ID, SIM, TS, V, OK FROM T WHERE OK = TRUE`
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"legacy", true}, {"arena", false}} {
		b.Run(mode.name, func(b *testing.B) {
			db.SetLegacyResultAlloc(mode.legacy)
			defer db.SetLegacyResultAlloc(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := db.Query(query)
				if err != nil || len(out.Data) != rows/2 {
					b.Fatalf("rows=%d err=%v", len(out.Data), err)
				}
				out.Close()
			}
		})
	}
}

// BenchmarkAblation_OrderedIndex measures the ordered secondary index
// on the paper's dominant scientific-query shape — a selective range
// predicate (TIMESTEP window) over a large result-file catalogue —
// against the same query forced through a full scan. The acceptance
// bar for the access-path planner is ≥5x on 100k rows; the B+tree scan
// touches ~0.1% of the table and lands far beyond that.
func BenchmarkAblation_OrderedIndex(b *testing.B) {
	db, err := sqldb.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE RESULT_FILE (
		ID INTEGER PRIMARY KEY, SIMULATION_KEY VARCHAR(30),
		TIMESTEP INTEGER, SIZE_BYTES INTEGER)`); err != nil {
		b.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO RESULT_FILE VALUES (?, ?, ?, ?)`)
	if err != nil {
		b.Fatal(err)
	}
	const rows = 100_000
	for i := 0; i < rows; i++ {
		if _, err := ins.Exec(
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("S%03d", i%400)),
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(i)*1024)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := db.Exec(`CREATE INDEX IDX_TS ON RESULT_FILE (TIMESTEP) USING ORDERED`); err != nil {
		b.Fatal(err)
	}
	const query = `SELECT COUNT(*), MAX(SIZE_BYTES) FROM RESULT_FILE WHERE TIMESTEP BETWEEN ? AND ?`
	args := []sqltypes.Value{sqltypes.NewInt(50_000), sqltypes.NewInt(50_099)}
	for _, mode := range []struct {
		name     string
		scanOnly bool
	}{{"full-scan", true}, {"ordered-index", false}} {
		b.Run(mode.name, func(b *testing.B) {
			db.SetFullScanOnly(mode.scanOnly)
			defer db.SetFullScanOnly(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := db.Query(query, args...)
				if err != nil || rows.Data[0][0].Int() != 100 {
					b.Fatalf("rows=%v err=%v", rows, err)
				}
			}
		})
	}
}

// BenchmarkAblation_ValueLayout measures the raw SELECT scan cost the
// compact 32-byte sqltypes.Value layout targets: a full scan of 100k
// mixed-kind rows with a residual predicate and projection, where the
// previous 112-byte Value made row copying (~27% of SELECT CPU in
// duffcopy) and the per-row allocations the dominant cost. Track B/op
// and allocs/op across PRs.
func BenchmarkAblation_ValueLayout(b *testing.B) {
	db, err := sqldb.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE T (
		ID INTEGER PRIMARY KEY, SIM VARCHAR(30), TS TIMESTAMP,
		V DOUBLE, OK BOOLEAN)`); err != nil {
		b.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO T VALUES (?, ?, ?, ?, ?)`)
	if err != nil {
		b.Fatal(err)
	}
	base := time.Date(1999, 1, 10, 15, 9, 32, 0, time.UTC)
	const rows = 100_000
	for i := 0; i < rows; i++ {
		if _, err := ins.Exec(
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("S%03d", i%400)),
			sqltypes.NewTime(base.Add(time.Duration(i)*time.Second)),
			sqltypes.NewDouble(float64(i)*0.5),
			sqltypes.NewBool(i%2 == 0)); err != nil {
			b.Fatal(err)
		}
	}
	// No index on V: these are deliberately full heap scans.
	arg := sqltypes.NewDouble(0)
	b.Run("aggregate", func(b *testing.B) {
		const query = `SELECT COUNT(*), AVG(V) FROM T WHERE V >= ? AND OK = TRUE`
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := db.Query(query, arg)
			if err != nil || out.Data[0][0].Int() != rows/2 {
				b.Fatalf("rows=%v err=%v", out, err)
			}
		}
	})
	// Row materialisation is where sizeof(Value) dominates B/op: every
	// projected row copies one Value per column into the result.
	b.Run("project", func(b *testing.B) {
		const query = `SELECT ID, SIM, TS, V, OK FROM T WHERE OK = TRUE`
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := db.Query(query, arg)
			if err != nil || len(out.Data) != rows/2 {
				b.Fatalf("rows=%d err=%v", len(out.Data), err)
			}
		}
	})
}

// BenchmarkAblation_CompositeIndex measures the composite (two-column)
// ordered index on the archive's dominant compound shape — "this
// simulation, this timestep" — as a two-column equality over 100k rows,
// against the same query forced through a full scan. The equality is
// consumed exactly, so the COUNT is additionally answered index-only
// (zero heap rows; see TestIndexOnlyAggregates for the assertion).
func BenchmarkAblation_CompositeIndex(b *testing.B) {
	db, err := sqldb.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE RESULT_FILE (
		ID INTEGER PRIMARY KEY, SIMULATION_KEY VARCHAR(30),
		TIMESTEP INTEGER, SIZE_BYTES INTEGER)`); err != nil {
		b.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO RESULT_FILE VALUES (?, ?, ?, ?)`)
	if err != nil {
		b.Fatal(err)
	}
	const rows = 100_000
	for i := 0; i < rows; i++ {
		if _, err := ins.Exec(
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("S%03d", i%400)),
			sqltypes.NewInt(int64(i/400)), // 400 sims × 250 timesteps, 1 row per pair
			sqltypes.NewInt(int64(i)*1024)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := db.Exec(`CREATE INDEX IDX_SIM_TS ON RESULT_FILE (SIMULATION_KEY, TIMESTEP) USING ORDERED`); err != nil {
		b.Fatal(err)
	}
	const query = `SELECT COUNT(*) FROM RESULT_FILE WHERE SIMULATION_KEY = ? AND TIMESTEP = ?`
	args := []sqltypes.Value{sqltypes.NewString("S042"), sqltypes.NewInt(125)}
	for _, mode := range []struct {
		name     string
		scanOnly bool
	}{{"full-scan", true}, {"composite-index", false}} {
		b.Run(mode.name, func(b *testing.B) {
			db.SetFullScanOnly(mode.scanOnly)
			defer db.SetFullScanOnly(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := db.Query(query, args...)
				if err != nil || out.Data[0][0].Int() != 1 {
					b.Fatalf("rows=%v err=%v", out, err)
				}
			}
		})
	}
}

// BenchmarkAblation_JoinPlan measures the index nested-loop join on a
// 1k×1k equi-join with the inner join key indexed, against the naive
// cross-product nested loop (SetFullScanOnly). The INL path probes the
// index once per outer row instead of materialising a million-row
// product; results are proven identical by TestJoinINLPropertyVsNaive.
func BenchmarkAblation_JoinPlan(b *testing.B) {
	db, err := sqldb.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecScript(`CREATE TABLE SIM (SID INTEGER PRIMARY KEY, K INTEGER);
		CREATE TABLE RES (RID INTEGER PRIMARY KEY, K INTEGER, SZ INTEGER)`); err != nil {
		b.Fatal(err)
	}
	insS, _ := db.Prepare(`INSERT INTO SIM VALUES (?, ?)`)
	insR, _ := db.Prepare(`INSERT INTO RES VALUES (?, ?, ?)`)
	const n = 1000
	for i := 0; i < n; i++ {
		if _, err := insS.Exec(sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i))); err != nil {
			b.Fatal(err)
		}
		if _, err := insR.Exec(sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(i)*4096)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := db.Exec(`CREATE INDEX RES_K ON RES (K)`); err != nil {
		b.Fatal(err)
	}
	const query = `SELECT COUNT(*) FROM SIM JOIN RES ON RES.K = SIM.K`
	for _, mode := range []struct {
		name     string
		scanOnly bool
	}{{"cross-product", true}, {"index-nested-loop", false}} {
		b.Run(mode.name, func(b *testing.B) {
			db.SetFullScanOnly(mode.scanOnly)
			defer db.SetFullScanOnly(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := db.Query(query)
				if err != nil || out.Data[0][0].Int() != n {
					b.Fatalf("rows=%v err=%v", out, err)
				}
			}
		})
	}
}

// BenchmarkAblation_GroupPushdown measures the three grouped-aggregate
// strategies on the archive's dominant rollup shape — per-simulation
// COUNT/SUM/AVG/MIN/MAX over a 100k-row result-file catalogue, 400
// groups. "legacy" is the PR-4 executor (materialise every row, group
// via a map of row slices, then walk each group per aggregate);
// "hash-agg" folds rows into per-group accumulators during the same
// heap scan; "group-ordered" pushes the GROUP BY onto the covering
// ordered index — groups arrive clustered and, with every aggregate
// argument in the index, whole groups fold from the keys without
// touching the heap (DB.HeapRowReads stays flat). Track ns/op and
// B/op: the fold strategies drop the O(rows) retained state and the
// per-row group-key string allocations.
func BenchmarkAblation_GroupPushdown(b *testing.B) {
	db, err := sqldb.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE RESULT_FILE (
		ID INTEGER PRIMARY KEY, SIMULATION_KEY VARCHAR(30),
		TIMESTEP INTEGER, SIZE_BYTES INTEGER)`); err != nil {
		b.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO RESULT_FILE VALUES (?, ?, ?, ?)`)
	if err != nil {
		b.Fatal(err)
	}
	const rows = 100_000
	for i := 0; i < rows; i++ {
		if _, err := ins.Exec(
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("S%03d", i%400)),
			sqltypes.NewInt(int64(i/400)),
			sqltypes.NewInt(int64(i)*1024)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := db.Exec(`CREATE INDEX IDX_SIM_TS_SZ ON RESULT_FILE (SIMULATION_KEY, TIMESTEP, SIZE_BYTES) USING ORDERED`); err != nil {
		b.Fatal(err)
	}
	const query = `SELECT SIMULATION_KEY, COUNT(*), SUM(SIZE_BYTES), AVG(SIZE_BYTES),
		MIN(TIMESTEP), MAX(TIMESTEP) FROM RESULT_FILE GROUP BY SIMULATION_KEY`
	for _, mode := range []struct {
		name             string
		scanOnly, legacy bool
	}{{"legacy", true, true}, {"hash-agg", true, false}, {"group-ordered", false, false}} {
		b.Run(mode.name, func(b *testing.B) {
			db.SetFullScanOnly(mode.scanOnly)
			db.SetLegacyAggregation(mode.legacy)
			defer db.SetFullScanOnly(false)
			defer db.SetLegacyAggregation(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := db.Query(query)
				if err != nil || len(out.Data) != 400 {
					b.Fatalf("groups=%d err=%v", len(out.Data), err)
				}
			}
		})
	}
}

// BenchmarkAblation_HashJoin measures the hash-join fallback on a
// 1k×1k equi-join with NO index on either join key, against the naive
// cross-product nested loop the engine previously degraded to. The
// hash join scans each table once (build + probe) instead of visiting
// a million row pairs; results are proven identical by
// TestJoinHashPropertyVsNaive.
func BenchmarkAblation_HashJoin(b *testing.B) {
	db, err := sqldb.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecScript(`CREATE TABLE SIM (SID INTEGER PRIMARY KEY, K INTEGER);
		CREATE TABLE RES (RID INTEGER PRIMARY KEY, K INTEGER, SZ INTEGER)`); err != nil {
		b.Fatal(err)
	}
	insS, _ := db.Prepare(`INSERT INTO SIM VALUES (?, ?)`)
	insR, _ := db.Prepare(`INSERT INTO RES VALUES (?, ?, ?)`)
	const n = 1000
	for i := 0; i < n; i++ {
		if _, err := insS.Exec(sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i))); err != nil {
			b.Fatal(err)
		}
		if _, err := insR.Exec(sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(i)*4096)); err != nil {
			b.Fatal(err)
		}
	}
	const query = `SELECT COUNT(*) FROM SIM JOIN RES ON RES.K = SIM.K`
	for _, mode := range []struct {
		name     string
		scanOnly bool
	}{{"cross-product", true}, {"hash-join", false}} {
		b.Run(mode.name, func(b *testing.B) {
			db.SetFullScanOnly(mode.scanOnly)
			defer db.SetFullScanOnly(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := db.Query(query)
				if err != nil || out.Data[0][0].Int() != n {
					b.Fatalf("rows=%v err=%v", out, err)
				}
			}
		})
	}
}

// BenchmarkAblation_GroupCommit shows WAL group commit amortising
// fsyncs: serial committers pay one Sync each, concurrent committers
// batch behind a shared flush leader, so parallel throughput rises with
// offered load instead of serialising on the disk.
func BenchmarkAblation_GroupCommit(b *testing.B) {
	build := func() *sqldb.DB {
		db, err := sqldb.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		db.CheckpointEvery = 0
		if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(40))`); err != nil {
			b.Fatal(err)
		}
		return db
	}
	b.Run("serial", func(b *testing.B) {
		db := build()
		defer db.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Exec(`INSERT INTO t VALUES (?, ?)`,
				sqltypes.NewInt(int64(i)), sqltypes.NewString("metadata row")); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		db := build()
		defer db.Close()
		var next int64
		// Committers spend their time parked in fsync, not on-CPU, so
		// batching shows even on single-core runners given enough
		// concurrent goroutines.
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				id := atomic.AddInt64(&next, 1)
				if _, err := db.Exec(`INSERT INTO t VALUES (?, ?)`,
					sqltypes.NewInt(id), sqltypes.NewString("metadata row")); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkAblation_WALCommit compares in-memory commits against
// durable WAL commits (fsync per transaction).
func BenchmarkAblation_WALCommit(b *testing.B) {
	for _, durable := range []bool{false, true} {
		name := "memory"
		if durable {
			name = "wal"
		}
		b.Run(name, func(b *testing.B) {
			dir := ""
			if durable {
				dir = b.TempDir()
			}
			db, err := sqldb.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			db.CheckpointEvery = 0
			if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(40))`); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Exec(`INSERT INTO t VALUES (?, ?)`,
					sqltypes.NewInt(int64(i)), sqltypes.NewString("metadata row")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_PlanCache measures the prepared-statement plan
// cache on the archive's hottest query shape: a selective indexed
// browse lookup issued repeatedly through DB.Query with identical text.
// Cache off re-lexes, re-parses and re-binds the statement per call;
// cache on reuses one bound plan, leaving only the index lookup and
// projection. This is the FK/PK-browsing and link-control pattern where
// per-statement overhead, not data volume, bounds throughput.
func BenchmarkAblation_PlanCache(b *testing.B) {
	const query = `SELECT FILE_NAME, SIMULATION_KEY, TIMESTEP, MEASUREMENT, SIZE_BYTES, FORMAT
		FROM RESULT_FILE
		WHERE SIMULATION_KEY = ? AND TIMESTEP BETWEEN ? AND ?
		AND MEASUREMENT IN ('u', 'v', 'w', 'p') AND FORMAT <> 'RAW'
		ORDER BY TIMESTEP LIMIT 5`
	build := func() *sqldb.DB {
		db, err := sqldb.Open("")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(`CREATE TABLE RESULT_FILE (
			FILE_NAME VARCHAR(64) PRIMARY KEY, SIMULATION_KEY VARCHAR(30),
			TIMESTEP INTEGER, MEASUREMENT VARCHAR(10), FORMAT VARCHAR(10), SIZE_BYTES INTEGER)`); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if _, err := db.Exec(`INSERT INTO RESULT_FILE VALUES (?, ?, ?, ?, ?, ?)`,
				sqltypes.NewString(fmt.Sprintf("ts%04d.tsf", i)),
				sqltypes.NewString(fmt.Sprintf("S%03d", i%400)),
				sqltypes.NewInt(int64(i)),
				sqltypes.NewString("u"),
				sqltypes.NewString("TSF"),
				sqltypes.NewInt(int64(i*1024))); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := db.Exec(`CREATE INDEX idx_sim ON RESULT_FILE (SIMULATION_KEY)`); err != nil {
			b.Fatal(err)
		}
		return db
	}
	for _, cached := range []bool{false, true} {
		name := "cache=off"
		if cached {
			name = "cache=on"
		}
		b.Run(name, func(b *testing.B) {
			db := build()
			defer db.Close()
			if !cached {
				db.SetPlanCacheCapacity(0)
			}
			args := []sqltypes.Value{
				sqltypes.NewString("S042"), sqltypes.NewInt(0), sqltypes.NewInt(2000)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := db.Query(query, args...)
				if err != nil || len(rows.Data) != 5 {
					b.Fatalf("rows=%v err=%v", rows, err)
				}
			}
		})
	}
}

// BenchmarkParallelQuery measures concurrent query throughput as a
// function of GOMAXPROCS. The read-only variant runs the same
// aggregate from every goroutine: MVCC snapshot reads share the
// engine's read lock, so ns/op should drop roughly linearly from
// procs=1 to procs=8 on real multi-core hardware (a single-core host
// reports flat numbers — see BENCH json notes). The mixed variant is a
// 90/10 read/write blend; writes go through the sharded per-table
// latch, so reader throughput should stay within ~20% of read-only
// rather than collapsing behind an exclusive writer lock.
func BenchmarkParallelQuery(b *testing.B) {
	build := func() *sqldb.DB {
		db, err := sqldb.Open("")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, sim VARCHAR(30), v DOUBLE)`); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if _, err := db.Exec(`INSERT INTO t VALUES (?, ?, ?)`,
				sqltypes.NewInt(int64(i)),
				sqltypes.NewString(fmt.Sprintf("S%03d", i%100)),
				sqltypes.NewDouble(float64(i))); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}
	const query = `SELECT COUNT(*), AVG(v) FROM t WHERE sim = ?`
	const write = `UPDATE t SET v = v + 1 WHERE id = ?`
	arg := sqltypes.NewString("S042")
	procsList := []int{1, 2, 4, 8}

	atProcs := func(b *testing.B, procs int, body func(*testing.B, *sqldb.DB)) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		db := build()
		defer db.Close()
		b.ResetTimer()
		body(b, db)
	}

	for _, procs := range procsList {
		b.Run(fmt.Sprintf("read-only/procs=%d", procs), func(b *testing.B) {
			atProcs(b, procs, func(b *testing.B, db *sqldb.DB) {
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if _, err := db.Query(query, arg); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		})
	}
	for _, procs := range procsList {
		b.Run(fmt.Sprintf("mixed-90-10/procs=%d", procs), func(b *testing.B) {
			atProcs(b, procs, func(b *testing.B, db *sqldb.DB) {
				var seq atomic.Int64
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						n := seq.Add(1)
						if n%10 == 0 {
							if _, err := db.Exec(write, sqltypes.NewInt(n%2000)); err != nil {
								b.Fatal(err)
							}
							continue
						}
						if _, err := db.Query(query, arg); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		})
	}
}

// BenchmarkAblation_Telemetry pins the cost of the telemetry layer on
// the query hot path. "untraced" is the default production
// configuration — metrics registered, tracing threshold zero — and is
// the number every other BenchmarkAblation_* implicitly includes;
// "traced" sets a threshold high enough that every statement collects
// a full EXPLAIN ANALYZE trace without ever hitting the slow log. The
// untraced/traced gap is the price of always-on tracing; the contract
// is that the untraced path stays within noise (<3%) of the
// pre-telemetry engine.
func BenchmarkAblation_Telemetry(b *testing.B) {
	build := func() *sqldb.DB {
		db, err := sqldb.Open("")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, sim VARCHAR(30), v DOUBLE)`); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if _, err := db.Exec(`INSERT INTO t VALUES (?, ?, ?)`,
				sqltypes.NewInt(int64(i)),
				sqltypes.NewString(fmt.Sprintf("S%03d", i%100)),
				sqltypes.NewDouble(float64(i))); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}
	const query = `SELECT COUNT(*), AVG(v) FROM t WHERE sim = ?`
	arg := sqltypes.NewString("S042")

	for _, mode := range []struct {
		name      string
		threshold time.Duration
	}{
		{"untraced", 0},
		{"traced", time.Hour},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db := build()
			defer db.Close()
			db.SetTraceThreshold(mode.threshold)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(query, arg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Admission pins the overhead of statement
// governance on the hot scan path: "ungoverned" is a plain Query on a
// database with no admission semaphore configured (interrupt
// checkpoints compile to nil-receiver fast paths); "governed" runs the
// same scan through QueryContext with admission control, a statement
// timeout, and a memory budget all armed. The contract is that the
// governed path stays within noise (<3%) of the ungoverned one — the
// semaphore is one channel op per statement and the per-row
// checkpoint is a strided counter test.
func BenchmarkAblation_Admission(b *testing.B) {
	build := func(opts sqldb.Options) *sqldb.DB {
		db, err := sqldb.OpenWith("", opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, sim VARCHAR(30), v DOUBLE)`); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if _, err := db.Exec(`INSERT INTO t VALUES (?, ?, ?)`,
				sqltypes.NewInt(int64(i)),
				sqltypes.NewString(fmt.Sprintf("S%03d", i%100)),
				sqltypes.NewDouble(float64(i))); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}
	const query = `SELECT COUNT(*), AVG(v) FROM t WHERE sim = ?`
	arg := sqltypes.NewString("S042")

	b.Run("ungoverned", func(b *testing.B) {
		db := build(sqldb.Options{})
		defer db.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(query, arg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("governed", func(b *testing.B) {
		db := build(sqldb.Options{
			MaxConcurrentStatements: runtime.GOMAXPROCS(0),
			MemoryBudget:            64 << 20,
		})
		defer db.Close()
		db.SetStatementTimeout(time.Minute)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryContext(ctx, query, arg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_TokenTTLZeroAlloc: repeated validation of the same
// token (the browse-page hot path).
func BenchmarkAblation_QBECompile(b *testing.B) {
	d, err := exp.BuildDemoArchive(b, 8)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	q := core.QBE{
		Table:  "RESULT_FILE",
		Select: []string{"FILE_NAME", "SIMULATION_KEY", "DOWNLOAD_RESULT"},
		Restrictions: []core.Restriction{
			{Column: "MEASUREMENT", Op: "CONTAINS", Value: "u,v"},
			{Column: "TIMESTEP", Op: ">=", Value: "0"},
		},
		OrderBy: "FILE_NAME",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := d.Archive.Search(q)
		if err != nil || len(rs.Rows) != 1 {
			b.Fatalf("rows=%d err=%v", len(rs.Rows), err)
		}
	}
}

// newBenchSet builds a replica set of n in-process managers over temp
// stores (the failover and replicated-put ablations).
func newBenchSet(b *testing.B, n, rf int) (*cluster.ReplicaSet, *med.TokenAuthority) {
	b.Helper()
	auth, err := med.NewTokenAuthority([]byte("bench-secret"), time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	rs := cluster.New(cluster.Config{Host: "fs.sim:80", ReplicationFactor: rf, Tokens: auth})
	for i := 0; i < n; i++ {
		store, err := dlfs.NewStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		host := fmt.Sprintf("r%d.sim:80", i)
		if err := rs.Add(cluster.NewManagerNode(dlfs.NewManager(host, store, auth))); err != nil {
			b.Fatal(err)
		}
	}
	return rs, auth
}

// BenchmarkAblation_Failover measures token-checked read latency
// through the replicated tier (RF=2 over 3 members) with all replicas
// healthy versus the path's primary marked down: the price of a read
// that has to fail over, against the tier's baseline overhead.
func BenchmarkAblation_Failover(b *testing.B) {
	const path = "/runs/s1/ts0.tsf"
	payload := strings.Repeat("x", 64<<10)
	for _, down := range []int{0, 1} {
		b.Run(fmt.Sprintf("replicas-down=%d", down), func(b *testing.B) {
			rs, auth := newBenchSet(b, 3, 2)
			if _, err := rs.Put(path, strings.NewReader(payload)); err != nil {
				b.Fatal(err)
			}
			if err := rs.Prepare(1, med.LinkOp{Kind: med.OpLink, Path: path, Opts: sqltypes.DefaultEASIA()}); err != nil {
				b.Fatal(err)
			}
			if err := rs.Commit(1); err != nil {
				b.Fatal(err)
			}
			if down > 0 {
				if err := rs.MarkDown(rs.Replicas(path)[0]); err != nil {
					b.Fatal(err)
				}
			}
			tok, err := auth.Mint(path, "bench", time.Hour)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rc, _, err := rs.Open(path, tok)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, rc); err != nil {
					b.Fatal(err)
				}
				rc.Close()
			}
		})
	}
}

// BenchmarkReplicatedPut measures archival write throughput through
// the tier at RF=1 (placement only) versus RF=2 (true fan-out): the
// bandwidth cost of the durability the failover reads rely on.
func BenchmarkReplicatedPut(b *testing.B) {
	payload := []byte(strings.Repeat("y", 256<<10))
	for _, rf := range []int{1, 2} {
		b.Run(fmt.Sprintf("rf=%d", rf), func(b *testing.B) {
			rs, _ := newBenchSet(b, 3, rf)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				path := fmt.Sprintf("/runs/s1/put%d.tsf", i)
				if _, err := rs.Put(path, bytes.NewReader(payload)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
